// Package server implements the Nitro model registry daemon: a multi-tenant
// service that owns tuned models for many functions, trains new generations
// from observations pushed by deployed clients, and distributes versioned
// model artifacts with canary-gated promotion.
//
// The paper's workflow is offline: tune once, ship the model with the
// binary. In a fleet, that inverts — many processes run the same tuned
// function, each sees a slice of the input distribution, and the training
// corpus that matters is the union of what the fleet observes. The registry
// centralizes that loop: clients push observations (features + per-variant
// timings), a fleet-wide drift detector decides when the pooled evidence
// says the deployed model is stale, a bounded job queue retrains with the
// same pipeline as offline tuning, and the resulting artifact is promoted
// through a fraction-gated canary before the whole fleet adopts it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/ensemble"
	"nitro/internal/ml"
	"nitro/internal/obs"
	"nitro/internal/obs/trace"
	"nitro/internal/online"
)

// Sentinel errors; the HTTP layer maps them onto status codes.
var (
	ErrUnauthorized = errors.New("server: unauthorized")
	ErrNotFound     = errors.New("server: not found")
	ErrConflict     = errors.New("server: conflict")
	ErrQuota        = errors.New("server: quota exceeded")
	ErrInvalid      = errors.New("server: invalid request")
	ErrPrecondition = errors.New("server: precondition failed")
)

// nameRe restricts tenant and function names: they become path segments in
// both the HTTP API and the artifact store.
var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// Quotas bounds one tenant's footprint on the daemon. Zero values mean
// unlimited.
type Quotas struct {
	// MaxFunctions caps registered functions.
	MaxFunctions int `json:"max_functions,omitempty"`
	// MaxPendingJobs caps tune jobs that have not reached a terminal state.
	MaxPendingJobs int `json:"max_pending_jobs,omitempty"`
	// SamplesPerSec rate-limits pushed observation samples with a token
	// bucket; SampleBurst is the bucket depth (default 4x the rate).
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
	SampleBurst   float64 `json:"sample_burst,omitempty"`
}

// TenantConfig declares one tenant: its namespace, its bearer token, and
// its quotas.
type TenantConfig struct {
	Name   string `json:"name"`
	Token  string `json:"token"`
	Quotas Quotas `json:"quotas"`
}

// FunctionSpec registers one tuned function: the feature and variant names
// fix the wire shape of observations and the class range of models.
type FunctionSpec struct {
	Name     string   `json:"name"`
	Features []string `json:"features"`
	Variants []string `json:"variants"`
	// Default is the fallback variant index (constraint-reject fallback on
	// the client side).
	Default int `json:"default"`
}

func (s FunctionSpec) validate() error {
	if !nameRe.MatchString(s.Name) {
		return fmt.Errorf("%w: bad function name %q", ErrInvalid, s.Name)
	}
	if len(s.Variants) < 2 {
		return fmt.Errorf("%w: need at least 2 variants", ErrInvalid)
	}
	if len(s.Features) < 1 {
		return fmt.Errorf("%w: need at least 1 feature", ErrInvalid)
	}
	if s.Default < 0 || s.Default >= len(s.Variants) {
		return fmt.Errorf("%w: default variant %d out of range", ErrInvalid, s.Default)
	}
	return nil
}

// CanaryPolicy gates fleet-wide promotion of a retrained model.
type CanaryPolicy struct {
	// Fraction of client traffic the challenger serves during the gate.
	Fraction float64 `json:"fraction"`
	// MinSamples is the fleet-wide challenger call count required before a
	// verdict.
	MinSamples int64 `json:"min_samples"`
	// MaxFailureRate is the highest tolerated challenger failure share.
	MaxFailureRate float64 `json:"max_failure_rate"`
	// Sequential, when non-nil, additionally runs a paired-timing bakeoff
	// over the pushed observation stream: the challenger's predicted variant
	// is scored against the stable model's on every sample, and a paired-t
	// stopper can settle the episode (promote or roll back) well before the
	// failure-rate gate's fixed MinSamples budget. nil keeps the episode on
	// the failure-rate gate alone.
	Sequential *ensemble.BakeoffConfig `json:"sequential,omitempty"`
}

func (p CanaryPolicy) normalized() CanaryPolicy {
	if p.Fraction <= 0 || p.Fraction > 1 {
		p.Fraction = 0.2
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 50
	}
	if p.MaxFailureRate <= 0 {
		p.MaxFailureRate = 0.1
	}
	return p
}

// Canary decision strings, reported to clients.
const (
	DecisionNone       = "none"
	DecisionPending    = "pending"
	DecisionPromoted   = "promoted"
	DecisionRolledBack = "rolledback"
)

// CanaryState is the server-side canary: which version is challenging, the
// serving fraction clients must apply, and the fleet-aggregated outcome
// counters.
type CanaryState struct {
	Version int    `json:"version"`
	ETag    string `json:"etag"`
	// Trace is the episode's correlation id: the trace of the request (or
	// tune job) that staged this challenger. It survives journal replay, so
	// a canary resumed after a crash still reports the original provenance.
	Trace          string  `json:"trace,omitempty"`
	Fraction       float64 `json:"fraction"`
	MinSamples     int64   `json:"min_samples"`
	MaxFailureRate float64 `json:"max_failure_rate"`
	Calls          int64   `json:"calls"`
	Failures       int64   `json:"failures"`
	// BakeoffSamples / BakeoffMean report the sequential bakeoff's running
	// paired-sample count and mean relative challenger speedup (zero when
	// the episode runs the failure-rate gate alone).
	BakeoffSamples int64   `json:"bakeoff_samples,omitempty"`
	BakeoffMean    float64 `json:"bakeoff_mean,omitempty"`
}

// Deployment is what a polling client acts on: the stable version everyone
// should run, plus the optional canary challenger.
type Deployment struct {
	Function string `json:"function"`
	// Stable is 0 while no model has ever been promoted.
	Stable     int          `json:"stable"`
	StableETag string       `json:"stable_etag,omitempty"`
	Latest     int          `json:"latest"`
	Canary     *CanaryState `json:"canary,omitempty"`
	// LastDecision reports how the most recent canary episode ended.
	LastDecision string `json:"last_decision"`
	// LastDecisionTrace is the correlation id of the request that settled
	// the most recent canary episode — the verdict's end of the span tree.
	LastDecisionTrace string `json:"last_decision_trace,omitempty"`
}

// FunctionStatus is the observable state of one registered function.
type FunctionStatus struct {
	Spec         FunctionSpec      `json:"spec"`
	Deployment   Deployment        `json:"deployment"`
	Observations int64             `json:"observations"`
	Reservoir    int               `json:"reservoir"`
	Drift        online.FleetStats `json:"drift"`
	PendingJobs  int               `json:"pending_jobs"`
}

type artifact struct {
	version int
	data    []byte
	etag    string
}

type funcState struct {
	spec      FunctionSpec
	artifacts map[int]artifact
	latest    int
	stable    int
	canary    *CanaryState
	lastDec   string
	// lastDecTrace is the trace id of the request that settled the most
	// recent episode (persisted with the deployment pointer).
	lastDecTrace string
	// canaryReporters holds each reporter's last accepted cumulative totals
	// for the live canary episode; reporter-keyed reports fold in only the
	// movement past this baseline, so at-least-once retries cannot
	// double-count fleet samples. Reset at every episode boundary.
	canaryReporters map[string]reporterCounts
	// bakeoff is the live episode's sequential paired-timing experiment
	// (nil when CanaryPolicy.Sequential is unset); decoded caches the
	// challenger/stable models it scores samples against. Both reset at
	// every episode boundary.
	bakeoff *ensemble.Bakeoff
	decoded map[int]*ml.Model

	detector  *online.FleetDetector
	reservoir []autotuner.Observation
	obsCount  int64
	obsSeq    int64

	pendingTunes int
	autoTuned    bool // an auto-triggered retrain is pending or canarying
}

type tenantState struct {
	cfg    TenantConfig
	funcs  map[string]*funcState
	bucket tokenBucket
	tm     tenantMetrics
}

// tenantMetrics splits the hot-path counters by tenant. Cardinality is
// bounded by construction: tenants are registered in RegistryConfig, never
// minted from request data, so the labeled series set is fixed at startup.
type tenantMetrics struct {
	requests      atomic.Int64
	observations  atomic.Int64
	pulls         atomic.Int64
	tunes         atomic.Int64
	canaryReports atomic.Int64
}

// tokenBucket is a classic token bucket with an injectable clock.
type tokenBucket struct {
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(q Quotas) tokenBucket {
	b := tokenBucket{rate: q.SamplesPerSec, burst: q.SampleBurst}
	if b.rate > 0 && b.burst <= 0 {
		b.burst = 4 * b.rate
	}
	b.tokens = b.burst
	return b
}

func (b *tokenBucket) allow(now time.Time, n float64) bool {
	if b.rate <= 0 {
		return true
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// RegistryConfig configures the model registry.
type RegistryConfig struct {
	// Tenants declares the accepted namespaces and bearer tokens.
	Tenants []TenantConfig
	// DataDir, when set, persists specs and artifacts; the registry reloads
	// them on construction.
	DataDir string
	// Workers / QueueCapacity size the tuning job queue (defaults 2 / 16).
	Workers       int
	QueueCapacity int
	// Train configures the retraining pipeline (zero value: SVM defaults).
	Train autotuner.TrainOptions
	// Drift configures the fleet detector windows/thresholds (zero value:
	// online.Policy defaults).
	Drift online.Policy
	// Canary gates promotion of retrained models.
	Canary CanaryPolicy
	// ReservoirSize caps the per-function observation corpus (default 512).
	ReservoirSize int
	// MinRetrainSamples gates drift-triggered auto-tunes (default 32).
	MinRetrainSamples int
	// MaxInflight caps concurrent API requests (default 256). Under
	// overload the API sheds lower-priority classes first — observation
	// pushes beyond 50% of the cap, artifact/deployment pulls beyond 75%,
	// control traffic only at the full cap — with 503 + Retry-After, so
	// the canary lifecycle keeps making progress while telemetry degrades.
	MaxInflight int
	// DisableJournal turns off the write-ahead journal even when DataDir is
	// set, restoring the pre-journal behavior: a restart aborts in-flight
	// canaries back to stable.
	DisableJournal bool
	// JournalCompactBytes triggers journal compaction (rewrite from live
	// state) once the log grows past this size (default 1 MiB).
	JournalCompactBytes int64
	// Clock is injectable for rate-limit tests (default time.Now).
	Clock func() time.Time
	// Log, when non-nil, receives a structured slog event for every
	// control-plane transition (and feeds the flight recorder it carries).
	// nil disables logging; every call site is nil-safe.
	Log *trace.Log
	// TraceSource mints trace ids for requests that arrive without an
	// X-Nitro-Trace-Id header (default crypto/rand; seed it for
	// deterministic test replays).
	TraceSource *trace.Source
}

// RecoveryReport describes what journal recovery did at startup.
type RecoveryReport struct {
	// Journal reports whether journaling is active (DataDir set, not
	// disabled).
	Journal bool `json:"journal"`
	// CleanShutdown reports that the previous run closed in order (the
	// journal ended with a clean-shutdown marker); false after a crash.
	CleanShutdown bool `json:"clean_shutdown"`
	// RecordsReplayed counts intact journal records applied at startup.
	RecordsReplayed int `json:"records_replayed"`
	// ResumedCanaries counts canary episodes that were live when the
	// previous run died and are live again now, at their recorded fraction
	// and fleet sample counts.
	ResumedCanaries int `json:"resumed_canaries"`
	// DroppedRecords counts records that referenced state the on-disk
	// artifact store no longer corroborates (missing artifact, etag
	// mismatch, settled episode); they are skipped, not fatal.
	DroppedRecords int `json:"dropped_records"`
	// CorruptTail / QuarantinePath describe a torn or corrupt journal tail:
	// the reason it failed validation and where its bytes were preserved.
	CorruptTail    string `json:"corrupt_tail,omitempty"`
	QuarantinePath string `json:"quarantine_path,omitempty"`
	// TailError is the typed corruption error (nil when the tail was
	// intact).
	TailError *CorruptTailError `json:"-"`
}

// Registry is the daemon's state: tenants, their functions, the artifact
// store and the tuning queue. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	tenants map[string]*tenantState
	byToken map[string]*tenantState
	jobs    *autotuner.JobQueue
	jobMeta map[string]jobMeta // job id -> owner
	cfg     RegistryConfig

	journal  *journal
	recovery RecoveryReport
	shed     *shedder

	metrics serverMetrics
	// routeHist times each API route (fixed route set, one histogram per
	// route, exported as nitro_server_http_request_seconds{route=...}).
	routeHist map[string]*obs.Histogram
}

type jobMeta struct{ tenant, fn string }

// NewRegistry validates the tenant set, reloads persisted state when
// DataDir is set, and starts the tuning workers.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("%w: no tenants configured", ErrInvalid)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 16
	}
	if cfg.ReservoirSize <= 0 {
		cfg.ReservoirSize = 512
	}
	if cfg.MinRetrainSamples <= 0 {
		cfg.MinRetrainSamples = 32
	}
	if cfg.JournalCompactBytes <= 0 {
		cfg.JournalCompactBytes = 1 << 20
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	cfg.Canary = cfg.Canary.normalized()
	if cfg.TraceSource == nil {
		cfg.TraceSource = trace.NewSource()
	}
	r := &Registry{
		tenants:   make(map[string]*tenantState),
		byToken:   make(map[string]*tenantState),
		jobMeta:   make(map[string]jobMeta),
		cfg:       cfg,
		routeHist: make(map[string]*obs.Histogram),
	}
	for _, route := range apiRoutes {
		r.routeHist[route] = obs.NewHistogram()
	}
	r.shed = &shedder{max: int64(cfg.MaxInflight), m: &r.metrics, log: cfg.Log}
	for _, tc := range cfg.Tenants {
		if !nameRe.MatchString(tc.Name) {
			return nil, fmt.Errorf("%w: bad tenant name %q", ErrInvalid, tc.Name)
		}
		if tc.Token == "" {
			return nil, fmt.Errorf("%w: tenant %q has an empty token", ErrInvalid, tc.Name)
		}
		if _, dup := r.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate tenant %q", ErrInvalid, tc.Name)
		}
		if _, dup := r.byToken[tc.Token]; dup {
			return nil, fmt.Errorf("%w: tenants share a token", ErrInvalid)
		}
		ts := &tenantState{cfg: tc, funcs: make(map[string]*funcState), bucket: newBucket(tc.Quotas)}
		r.tenants[tc.Name] = ts
		r.byToken[tc.Token] = ts
	}
	if cfg.DataDir != "" {
		if err := r.load(); err != nil {
			return nil, err
		}
		if !cfg.DisableJournal {
			if err := r.openAndReplayJournal(); err != nil {
				return nil, err
			}
		}
	}
	r.jobs = autotuner.NewJobQueueObs(cfg.Workers, cfg.QueueCapacity, cfg.Log)
	r.logRecovery()
	return r, nil
}

// logRecovery emits the startup recovery summary and re-attaches each
// resumed canary to its original episode trace — the id staged before the
// crash carries through restart, so the span tree stays whole.
func (r *Registry) logRecovery() {
	if r.cfg.Log == nil {
		return
	}
	rep := r.recovery
	if rep.Journal {
		r.cfg.Log.Event(context.Background(), "server", "recovery",
			trace.F("clean_shutdown", strconv.FormatBool(rep.CleanShutdown)),
			trace.F("records_replayed", strconv.Itoa(rep.RecordsReplayed)),
			trace.F("resumed_canaries", strconv.Itoa(rep.ResumedCanaries)),
			trace.F("dropped_records", strconv.Itoa(rep.DroppedRecords)),
			trace.F("corrupt_tail", strconv.FormatBool(rep.CorruptTail != "")))
	}
	var tnames []string
	for n := range r.tenants {
		tnames = append(tnames, n)
	}
	sort.Strings(tnames)
	for _, tn := range tnames {
		ts := r.tenants[tn]
		var fnames []string
		for n := range ts.funcs {
			fnames = append(fnames, n)
		}
		sort.Strings(fnames)
		for _, fn := range fnames {
			if c := ts.funcs[fn].canary; c != nil {
				r.cfg.Log.Event(trace.With(context.Background(), c.Trace),
					"server", "canary.resume", trace.F("tenant", tn), trace.F("fn", fn),
					trace.F("version", strconv.Itoa(c.Version)),
					trace.F("calls", strconv.FormatInt(c.Calls, 10)))
			}
		}
	}
}

// openAndReplayJournal opens DataDir/journal.wal, replays its records over
// the artifact-store state load() restored, and compacts the log to the
// resulting live state. A corrupt tail is quarantined and reported in the
// recovery report, never fatal.
func (r *Registry) openAndReplayJournal() error {
	if err := os.MkdirAll(r.cfg.DataDir, 0o755); err != nil {
		return err
	}
	j, records, corrupt, err := openJournal(filepath.Join(r.cfg.DataDir, "journal.wal"))
	if err != nil {
		return err
	}
	r.journal = j
	r.recovery.Journal = true
	if corrupt != nil {
		r.recovery.TailError = corrupt
		r.recovery.CorruptTail = corrupt.Reason
		r.recovery.QuarantinePath = corrupt.QuarantinePath
		r.metrics.journalQuarantined.Add(1)
	}
	dirty := r.replayJournal(records)
	// A replayed verdict exists only in the journal until deployment.json
	// is rewritten; persist it before compaction drops the canary_end
	// record, or the next restart would silently revert the acknowledged
	// decision back to whatever deployment.json last said.
	for fs, tenant := range dirty {
		if err := r.persistArtifact(tenant, fs); err != nil {
			return err
		}
	}
	return r.compactJournalLocked()
}

// replayJournal applies intact journal records to the loaded state. Every
// record is validated against the on-disk artifact store before it takes
// effect; records the store no longer corroborates are counted and
// skipped, so a stale or partially compacted journal degrades to the
// pre-journal behavior instead of resurrecting phantom state. The returned
// map lists functions whose durable deployment pointer a replayed verdict
// changed — the caller must persist them before compacting the journal.
func (r *Registry) replayJournal(records []journalRecord) map[*funcState]string {
	dirty := make(map[*funcState]string)
	for i, rec := range records {
		if rec.Op == opCleanShutdown {
			// Only a marker in tail position — with nothing corrupt after
			// it — proves an orderly close.
			r.recovery.CleanShutdown = i == len(records)-1 && r.recovery.TailError == nil
			continue
		}
		fs := r.findFunc(rec.Tenant, rec.Function)
		if fs == nil {
			r.recovery.DroppedRecords++
			continue
		}
		switch rec.Op {
		case opCanaryStart:
			a, ok := fs.artifacts[rec.Version]
			if !ok || a.etag != rec.ETag || rec.Version == fs.stable {
				// Artifact gone, bytes changed, or the episode already
				// settled into deployment.json: nothing to resume.
				r.recovery.DroppedRecords++
				continue
			}
			fs.canary = &CanaryState{
				Version:        rec.Version,
				ETag:           rec.ETag,
				Trace:          trace.Sanitize(rec.Trace),
				Fraction:       rec.Fraction,
				MinSamples:     rec.MinSamples,
				MaxFailureRate: rec.MaxFailureRate,
			}
			fs.canaryReporters = nil
			// The stopper's config is re-derived from the current policy (like
			// the drift detector's), so a config change between restarts wins;
			// a later progress record restores the accumulated state.
			fs.bakeoff, fs.decoded = nil, nil
			if seq := r.cfg.Canary.Sequential; seq != nil {
				fs.bakeoff = ensemble.NewBakeoff(*seq)
			}
			fs.lastDec = DecisionPending
			fs.autoTuned = rec.Auto
		case opCanaryProgress:
			if fs.canary == nil || fs.canary.Version != rec.Version {
				r.recovery.DroppedRecords++
				continue
			}
			// Progress records carry cumulative fleet counters, so only the
			// last one matters and replaying twice cannot double-count.
			fs.canary.Calls = rec.Calls
			fs.canary.Failures = rec.Failures
			fs.canaryReporters = rec.Reporters
			if fs.bakeoff != nil && rec.Bakeoff != nil {
				// Cumulative experiment state: the last snapshot wins, and a
				// corrupt one degrades to restarting the experiment, never to
				// poisoning it.
				if b, err := ensemble.RestoreBakeoff(*rec.Bakeoff); err == nil {
					fs.bakeoff = b
				}
			}
		case opCanaryEnd:
			// The verdict is journaled before deployment.json is rewritten;
			// replay closes the gap if the crash landed between the two.
			if fs.canary != nil && fs.canary.Version == rec.Version {
				fs.canary = nil
				fs.canaryReporters = nil
				fs.bakeoff, fs.decoded = nil, nil
				fs.autoTuned = false
			}
			prevStable, prevDec := fs.stable, fs.lastDec
			switch rec.Decision {
			case DecisionPromoted:
				if _, ok := fs.artifacts[rec.Version]; ok {
					fs.stable = rec.Version
					fs.lastDec = DecisionPromoted
					fs.lastDecTrace = trace.Sanitize(rec.Trace)
				} else {
					r.recovery.DroppedRecords++
					continue
				}
			case DecisionRolledBack:
				fs.lastDec = DecisionRolledBack
				fs.lastDecTrace = trace.Sanitize(rec.Trace)
			}
			if fs.stable != prevStable || fs.lastDec != prevDec {
				dirty[fs] = rec.Tenant
			}
		case opDrift:
			if rec.Drift == nil {
				r.recovery.DroppedRecords++
				continue
			}
			fs.detector.Restore(*rec.Drift)
		default:
			r.recovery.DroppedRecords++
			continue
		}
		r.recovery.RecordsReplayed++
	}
	for _, ts := range r.tenants {
		for _, fs := range ts.funcs {
			if fs.canary != nil {
				r.recovery.ResumedCanaries++
				r.metrics.canariesResumed.Add(1)
			}
		}
	}
	r.metrics.journalReplayed.Add(int64(r.recovery.RecordsReplayed))
	r.metrics.journalDropped.Add(int64(r.recovery.DroppedRecords))
	return dirty
}

func (r *Registry) findFunc(tenant, fn string) *funcState {
	ts, ok := r.tenants[tenant]
	if !ok {
		return nil
	}
	return ts.funcs[fn]
}

// Recovery reports what journal recovery did when this registry started.
func (r *Registry) Recovery() RecoveryReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recovery
}

// journalAppend appends one durable record (no-op when journaling is off).
func (r *Registry) journalAppend(rec journalRecord) error {
	if r.journal == nil {
		return nil
	}
	if err := r.journal.append(rec); err != nil {
		return err
	}
	r.metrics.journalAppends.Add(1)
	return nil
}

// journalDriftLocked journals fs's current drift detector snapshot; called
// at detector state transitions so a restart restores the state machine,
// not just the counters. ctx supplies the causing request's trace id.
func (r *Registry) journalDriftLocked(ctx context.Context, tenant string, fs *funcState) error {
	if r.journal == nil {
		return nil
	}
	snap := fs.detector.Snapshot()
	return r.journalAppend(journalRecord{Op: opDrift, Tenant: tenant, Function: fs.spec.Name,
		Trace: trace.From(ctx), Drift: &snap})
}

// liveRecordsLocked renders the registry's current durable state as a
// minimal record list (compaction target): one drift snapshot per active
// detector, one start (+ cumulative progress) per live canary. Iteration
// is sorted so compaction output is deterministic.
func (r *Registry) liveRecordsLocked() []journalRecord {
	var tnames []string
	for n := range r.tenants {
		tnames = append(tnames, n)
	}
	sort.Strings(tnames)
	var recs []journalRecord
	for _, tn := range tnames {
		ts := r.tenants[tn]
		var fnames []string
		for n := range ts.funcs {
			fnames = append(fnames, n)
		}
		sort.Strings(fnames)
		for _, fn := range fnames {
			fs := ts.funcs[fn]
			if snap := fs.detector.Snapshot(); snap.Samples > 0 || snap.Windows > 0 || snap.State != online.StateHealthy {
				s := snap
				recs = append(recs, journalRecord{Op: opDrift, Tenant: tn, Function: fn, Drift: &s})
			}
			if c := fs.canary; c != nil {
				// The episode trace rides along, so compaction preserves the
				// canary's provenance exactly as the original start record did.
				recs = append(recs, journalRecord{Op: opCanaryStart, Tenant: tn, Function: fn,
					Version: c.Version, ETag: c.ETag, Trace: c.Trace, Fraction: c.Fraction,
					MinSamples: c.MinSamples, MaxFailureRate: c.MaxFailureRate, Auto: fs.autoTuned})
				if c.Calls > 0 || len(fs.canaryReporters) > 0 || (fs.bakeoff != nil && fs.bakeoff.N() > 0) {
					rec := journalRecord{Op: opCanaryProgress, Tenant: tn, Function: fn,
						Version: c.Version, Calls: c.Calls, Failures: c.Failures,
						Reporters: fs.canaryReporters}
					if fs.bakeoff != nil {
						snap := fs.bakeoff.Snapshot()
						rec.Bakeoff = &snap
					}
					recs = append(recs, rec)
				}
			}
		}
	}
	return recs
}

// compactJournalLocked rewrites the journal to the live state (snapshot +
// truncate).
func (r *Registry) compactJournalLocked() error {
	if r.journal == nil {
		return nil
	}
	recs := r.liveRecordsLocked()
	if err := r.journal.rewrite(recs); err != nil {
		return err
	}
	r.metrics.journalCompactions.Add(1)
	r.cfg.Log.Event(context.Background(), "server", "journal.compact",
		trace.F("live_records", strconv.Itoa(len(recs))),
		trace.F("bytes", strconv.FormatInt(r.journal.sizeBytes(), 10)))
	return nil
}

// Close drains the tuning queue (workers may still append journal records
// through their completion callbacks), flushes a final drift snapshot per
// active detector, writes the clean-shutdown marker and closes the
// journal. A restart after Close sees CleanShutdown=true and resumes any
// canary that was live — orderly shutdown persists strictly more state
// than a crash, never less.
func (r *Registry) Close() {
	r.jobs.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.journal == nil {
		return
	}
	for _, rec := range r.liveRecordsLocked() {
		if rec.Op == opDrift {
			// Drift counters accumulate outside transition points; the drain
			// flush makes the pooled sample counts durable too.
			r.journalAppend(rec) //nolint:errcheck // best-effort drain
		}
	}
	r.journalAppend(journalRecord{Op: opCleanShutdown}) //nolint:errcheck // best-effort marker
	r.journal.close()
	r.journal = nil
	r.cfg.Log.Event(context.Background(), "server", "shutdown.clean")
}

// kill simulates a crash for tests: the journal handle drops with no
// drain, marker or compaction — on-disk state is exactly what fsync'd
// appends left behind — then the job workers are stopped so the process
// can be torn down.
func (r *Registry) kill() {
	r.mu.Lock()
	if r.journal != nil {
		r.journal.close()
		r.journal = nil
	}
	r.mu.Unlock()
	r.jobs.Close()
}

// Authenticate resolves a bearer token to a tenant name.
func (r *Registry) Authenticate(token string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ts, ok := r.byToken[token]; ok && token != "" {
		return ts.cfg.Name, nil
	}
	return "", ErrUnauthorized
}

func (r *Registry) tenant(name string) (*tenantState, error) {
	ts, ok := r.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: tenant %q", ErrNotFound, name)
	}
	return ts, nil
}

func (ts *tenantState) fn(name string) (*funcState, error) {
	fs, ok := ts.funcs[name]
	if !ok {
		return nil, fmt.Errorf("%w: function %q", ErrNotFound, name)
	}
	return fs, nil
}

// RegisterFunction creates (or idempotently re-registers) a function spec.
// Changing the spec of an existing function is a conflict: models trained
// against the old shape would silently misdispatch. ctx carries the
// request's trace id for the structured event log.
func (r *Registry) RegisterFunction(ctx context.Context, tenant string, spec FunctionSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return err
	}
	if old, ok := ts.funcs[spec.Name]; ok {
		if specEqual(old.spec, spec) {
			return nil
		}
		return fmt.Errorf("%w: function %q already registered with a different spec", ErrConflict, spec.Name)
	}
	if q := ts.cfg.Quotas.MaxFunctions; q > 0 && len(ts.funcs) >= q {
		return fmt.Errorf("%w: tenant %q at max functions (%d)", ErrQuota, tenant, q)
	}
	ts.funcs[spec.Name] = r.newFuncState(spec)
	r.metrics.functions.Add(1)
	r.cfg.Log.Event(ctx, "server", "function.register",
		trace.F("tenant", tenant), trace.F("fn", spec.Name),
		trace.F("variants", strconv.Itoa(len(spec.Variants))))
	return r.persistSpec(tenant, spec)
}

func (r *Registry) newFuncState(spec FunctionSpec) *funcState {
	return &funcState{
		spec:      spec,
		artifacts: make(map[int]artifact),
		lastDec:   DecisionNone,
		detector:  online.NewFleetDetector(r.cfg.Drift),
	}
}

func specEqual(a, b FunctionSpec) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return string(ab) == string(bb)
}

// Functions lists a tenant's registered function names, sorted.
func (r *Registry) Functions(tenant string) ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ts.funcs))
	for name := range ts.funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Status reports one function's observable state.
func (r *Registry) Status(tenant, fn string) (FunctionStatus, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return FunctionStatus{}, err
	}
	fs, err := ts.fn(fn)
	if err != nil {
		return FunctionStatus{}, err
	}
	return FunctionStatus{
		Spec:         fs.spec,
		Deployment:   r.deploymentLocked(fs),
		Observations: fs.obsCount,
		Reservoir:    len(fs.reservoir),
		Drift:        fs.detector.Stats(),
		PendingJobs:  fs.pendingTunes,
	}, nil
}

// Deployment reports the stable/canary versions a client must serve.
func (r *Registry) Deployment(tenant, fn string) (Deployment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return Deployment{}, err
	}
	fs, err := ts.fn(fn)
	if err != nil {
		return Deployment{}, err
	}
	return r.deploymentLocked(fs), nil
}

func (r *Registry) deploymentLocked(fs *funcState) Deployment {
	d := Deployment{Function: fs.spec.Name, Stable: fs.stable, Latest: fs.latest,
		LastDecision: fs.lastDec, LastDecisionTrace: fs.lastDecTrace}
	if a, ok := fs.artifacts[fs.stable]; ok {
		d.StableETag = a.etag
	}
	if fs.canary != nil {
		c := *fs.canary
		if fs.bakeoff != nil {
			c.BakeoffSamples = int64(fs.bakeoff.N())
			c.BakeoffMean = fs.bakeoff.Mean()
		}
		d.Canary = &c
	}
	return d
}

// Artifact returns the stored bytes and etag of a model version; version 0
// selects the stable version.
func (r *Registry) Artifact(tenant, fn string, version int) (artifactOut []byte, etag string, v int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return nil, "", 0, err
	}
	fs, err := ts.fn(fn)
	if err != nil {
		return nil, "", 0, err
	}
	if version == 0 {
		version = fs.stable
	}
	a, ok := fs.artifacts[version]
	if !ok {
		return nil, "", 0, fmt.Errorf("%w: function %q has no model version %d", ErrNotFound, fn, version)
	}
	r.metrics.artifactPulls.Add(1)
	ts.tm.pulls.Add(1)
	return a.data, a.etag, a.version, nil
}

// PushModel installs an externally trained artifact (e.g. from offline
// nitro-tune). ifMatch carries the HTTP If-Match precondition: "" means
// unconditional, "*" requires some artifact to exist, otherwise it must
// equal the current latest artifact's etag — two racing pushers cannot both
// win. The model is re-stamped latest+1 (zero CreatedAt preserved) so the
// registry owns the version sequence; the canonical bytes/etag are
// returned. The new version deploys through the same canary gate as a
// retrained model.
func (r *Registry) PushModel(ctx context.Context, tenant, fn string, data []byte, ifMatch string) (Deployment, error) {
	m, err := ml.DecodeArtifact(data, "")
	if err != nil {
		return Deployment{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return Deployment{}, err
	}
	fs, err := ts.fn(fn)
	if err != nil {
		return Deployment{}, err
	}
	cur, hasCur := fs.artifacts[fs.latest]
	switch {
	case ifMatch == "":
	case ifMatch == "*":
		if !hasCur {
			return Deployment{}, fmt.Errorf("%w: no current artifact", ErrPrecondition)
		}
	case !hasCur || ifMatch != cur.etag:
		return Deployment{}, fmt.Errorf("%w: etag %s is not current", ErrPrecondition, ifMatch)
	}
	if err := r.installLocked(ctx, tenant, fs, m, false); err != nil {
		return Deployment{}, err
	}
	return r.deploymentLocked(fs), nil
}

// installLocked stores a candidate model as version latest+1 and stages it
// for deployment: the first-ever version promotes directly to stable (there
// is no incumbent to protect), later versions start a canary episode. A
// candidate arriving while another canary is live replaces it (the older
// challenger was never promoted). ctx's trace id becomes the episode trace.
func (r *Registry) installLocked(ctx context.Context, tenant string, fs *funcState, m *ml.Model, auto bool) error {
	if err := validateAgainstSpec(m, fs.spec); err != nil {
		return err
	}
	version := fs.latest + 1
	meta := ml.ModelMeta{Version: version}
	if m.Meta != nil {
		meta.TrainedOn = m.Meta.TrainedOn
	}
	m.Meta = &meta
	data, etag, err := ml.EncodeArtifact(m)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	fs.artifacts[version] = artifact{version: version, data: data, etag: etag}
	fs.latest = version
	r.metrics.artifactsStored.Add(1)
	r.cfg.Log.Event(ctx, "server", "model.push",
		trace.F("tenant", tenant), trace.F("fn", fs.spec.Name),
		trace.F("version", strconv.Itoa(version)), trace.F("auto", strconv.FormatBool(auto)))
	if fs.stable == 0 {
		fs.stable = version
		fs.lastDec = DecisionPromoted
		fs.lastDecTrace = trace.From(ctx)
		fs.detector.OnSwap()
		r.cfg.Log.Event(ctx, "server", "canary.promote",
			trace.F("tenant", tenant), trace.F("fn", fs.spec.Name),
			trace.F("version", strconv.Itoa(version)), trace.F("direct", "true"))
	} else {
		pol := r.cfg.Canary
		fs.canary = &CanaryState{
			Version:        version,
			ETag:           etag,
			Trace:          trace.From(ctx),
			Fraction:       pol.Fraction,
			MinSamples:     pol.MinSamples,
			MaxFailureRate: pol.MaxFailureRate,
		}
		fs.canaryReporters = nil
		fs.bakeoff, fs.decoded = nil, nil
		if pol.Sequential != nil {
			fs.bakeoff = ensemble.NewBakeoff(*pol.Sequential)
			fs.detector.OnBakeoffStart()
		}
		fs.lastDec = DecisionPending
		fs.autoTuned = auto
		r.metrics.canariesStarted.Add(1)
		r.cfg.Log.Event(ctx, "server", "canary.start",
			trace.F("tenant", tenant), trace.F("fn", fs.spec.Name),
			trace.F("version", strconv.Itoa(version)),
			trace.F("fraction", strconv.FormatFloat(pol.Fraction, 'g', -1, 64)),
			trace.F("auto", strconv.FormatBool(auto)))
	}
	// Artifact-first: the model bytes and deployment pointer reach disk
	// before the canary_start record, so a replayed start always finds the
	// artifact it references.
	if err := r.persistArtifact(tenant, fs); err != nil {
		return err
	}
	if c := fs.canary; c != nil && c.Version == version {
		return r.journalAppend(journalRecord{Op: opCanaryStart, Tenant: tenant, Function: fs.spec.Name,
			Trace: c.Trace, Version: c.Version, ETag: c.ETag, Fraction: c.Fraction,
			MinSamples: c.MinSamples, MaxFailureRate: c.MaxFailureRate, Auto: auto})
	}
	// First-ever version: the direct promotion flipped the detector.
	return r.journalDriftLocked(ctx, tenant, fs)
}

// validateAgainstSpec rejects models whose class labels exceed the
// registered variant count (they would misdispatch on every client).
func validateAgainstSpec(m *ml.Model, spec FunctionSpec) error {
	if m == nil || m.Classifier == nil {
		return fmt.Errorf("%w: artifact has no classifier", ErrInvalid)
	}
	for _, c := range m.Classifier.Classes() {
		if c < 0 || c >= len(spec.Variants) {
			return fmt.Errorf("%w: model class %d out of range for %d variants", ErrInvalid, c, len(spec.Variants))
		}
	}
	return nil
}

// ReportCanary folds one client's challenger outcomes into the fleet
// aggregate and returns the resulting decision. With a non-empty reporter,
// calls/failures are that reporter's *cumulative* totals for the episode
// and only the movement past the reporter's last accepted totals is
// applied — a report replayed by an at-least-once retry layer (applied
// once, response lost, body re-sent) is a no-op instead of a double count.
// An empty reporter applies calls/failures as verbatim deltas (one-shot
// tools; not retry-safe). Reports for a version that is not the live
// canary return the settled decision for that version (promoted if it
// became stable, rolled back otherwise) so laggard clients converge.
func (r *Registry) ReportCanary(ctx context.Context, tenant, fn string, version int, reporter string, calls, failures int64) (string, Deployment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return "", Deployment{}, err
	}
	fs, err := ts.fn(fn)
	if err != nil {
		return "", Deployment{}, err
	}
	ts.tm.canaryReports.Add(1)
	if fs.canary == nil || fs.canary.Version != version {
		dec := DecisionRolledBack
		if version == fs.stable {
			dec = DecisionPromoted
		} else if fs.canary != nil {
			dec = DecisionNone // a different canary episode is live
		}
		return dec, r.deploymentLocked(fs), nil
	}
	if calls < 0 || failures < 0 || failures > calls {
		return "", Deployment{}, fmt.Errorf("%w: bad canary report (%d calls, %d failures)", ErrInvalid, calls, failures)
	}
	c := fs.canary
	addCalls, addFails := calls, failures
	if reporter != "" {
		prev := fs.canaryReporters[reporter]
		if calls < prev.Calls || failures < prev.Failures {
			// The reporter's counters went backwards: its local canary slot
			// restarted, so its new totals contribute from a fresh baseline.
			prev = reporterCounts{}
		}
		addCalls, addFails = calls-prev.Calls, failures-prev.Failures
		if fs.canaryReporters == nil {
			fs.canaryReporters = make(map[string]reporterCounts)
		}
		fs.canaryReporters[reporter] = reporterCounts{Calls: calls, Failures: failures}
	}
	c.Calls += addCalls
	c.Failures += addFails
	r.cfg.Log.Event(ctx, "server", "canary.report",
		trace.F("tenant", tenant), trace.F("fn", fn),
		trace.F("version", strconv.Itoa(version)), trace.F("episode", c.Trace),
		trace.F("reporter", reporter),
		trace.F("calls", strconv.FormatInt(c.Calls, 10)),
		trace.F("failures", strconv.FormatInt(c.Failures, 10)))
	if c.Calls < c.MinSamples {
		if reporter != "" && addCalls == 0 && addFails == 0 {
			// Replayed duplicate: nothing moved, skip the fsync.
			return DecisionPending, r.deploymentLocked(fs), nil
		}
		// Journal the cumulative fleet counters (and reporter baselines) so
		// a crashed daemon resumes the gate mid-count instead of restarting
		// it from zero — and still dedupes reports retried across the crash.
		if err := r.journalAppend(journalRecord{Op: opCanaryProgress, Tenant: tenant,
			Function: fn, Trace: trace.From(ctx), Version: c.Version,
			Calls: c.Calls, Failures: c.Failures,
			Reporters: fs.canaryReporters}); err != nil {
			return "", Deployment{}, err
		}
		return DecisionPending, r.deploymentLocked(fs), nil
	}
	rate := float64(c.Failures) / float64(c.Calls)
	// WAL-first (inside endCanaryLocked): the verdict is durable before
	// deployment.json changes; a crash between the two replays the
	// canary_end record and converges.
	if err := r.endCanaryLocked(ctx, tenant, fs, version, rate <= c.MaxFailureRate); err != nil {
		return "", Deployment{}, err
	}
	return fs.lastDec, r.deploymentLocked(fs), nil
}

// PushObservations ingests samples pushed by a client: rate-limited by the
// tenant's token bucket, folded into the bounded reservoir (labelled
// retraining corpus) and into the fleet drift detector. A detector verdict
// that asks for a retrain auto-submits a tune job when enough corpus is
// available. Returns the fleet drift state after ingestion.
func (r *Registry) PushObservations(ctx context.Context, tenant, fn string, samples []online.RemoteSample) (online.FleetStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return online.FleetStats{}, err
	}
	fs, err := ts.fn(fn)
	if err != nil {
		return online.FleetStats{}, err
	}
	// Validate shapes before charging the rate limit: a malformed batch is
	// rejected whole and must not burn quota.
	for _, s := range samples {
		if len(s.Features) != len(fs.spec.Features) || len(s.Times) != len(fs.spec.Variants) {
			return online.FleetStats{}, fmt.Errorf("%w: sample shape %dx%d, want %dx%d",
				ErrInvalid, len(s.Features), len(s.Times), len(fs.spec.Features), len(fs.spec.Variants))
		}
	}
	if !ts.bucket.allow(r.cfg.Clock(), float64(len(samples))) {
		r.metrics.samplesRejected.Add(int64(len(samples)))
		return online.FleetStats{}, fmt.Errorf("%w: observation rate limit", ErrQuota)
	}
	wantRetrain := false
	stateBefore := fs.detector.State()
	for _, s := range samples {
		fs.obsCount++
		fs.obsSeq++
		fs.reservoir = append(fs.reservoir, autotuner.Observation{Seq: fs.obsSeq, Features: s.Features, Times: s.Times})
		if over := len(fs.reservoir) - r.cfg.ReservoirSize; over > 0 {
			fs.reservoir = fs.reservoir[over:]
		}
		v := fs.detector.Ingest(s)
		if v.WantRetrain || v.DriftDetected {
			wantRetrain = true
		}
	}
	r.metrics.samplesIngested.Add(int64(len(samples)))
	ts.tm.observations.Add(int64(len(samples)))
	// The same batch can double as paired bakeoff evidence: every sample
	// carries the full timing vector, so the live sequential canary (if any)
	// scores challenger vs stable picks on it and may settle right here.
	if err := r.feedCanaryBakeoffLocked(ctx, tenant, fs, samples); err != nil {
		return online.FleetStats{}, err
	}
	if wantRetrain && !fs.autoTuned && fs.pendingTunes == 0 && len(fs.reservoir) >= r.cfg.MinRetrainSamples {
		if _, err := r.submitTuneLocked(ctx, ts, fs, true); err == nil {
			r.metrics.autoTunes.Add(1)
		}
	}
	if fs.detector.State() != stateBefore {
		r.cfg.Log.Event(ctx, "server", "drift.transition",
			trace.F("tenant", tenant), trace.F("fn", fn),
			trace.F("from", string(stateBefore)), trace.F("to", string(fs.detector.State())))
		// A drift-state transition is the durable event; raw counter churn
		// between transitions is flushed at shutdown drain instead of per
		// push, keeping the fsync rate off the observation hot path.
		if err := r.journalDriftLocked(ctx, tenant, fs); err != nil {
			return online.FleetStats{}, err
		}
	}
	return fs.detector.Stats(), nil
}

// Tune submits an explicit tuning job over the function's observation
// corpus and returns the job id.
func (r *Registry) Tune(ctx context.Context, tenant, fn string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return "", err
	}
	fs, err := ts.fn(fn)
	if err != nil {
		return "", err
	}
	id, err := r.submitTuneLocked(ctx, ts, fs, false)
	if err != nil {
		return "", err
	}
	// The submit moved the detector to retraining; make that durable (the
	// job itself is not journaled — a crashed retrain simply re-triggers).
	if jerr := r.journalDriftLocked(ctx, tenant, fs); jerr != nil {
		return id, jerr
	}
	return id, nil
}

func (r *Registry) submitTuneLocked(ctx context.Context, ts *tenantState, fs *funcState, auto bool) (string, error) {
	if len(fs.reservoir) < 2 {
		return "", fmt.Errorf("%w: %d observations, need >= 2", ErrInvalid, len(fs.reservoir))
	}
	if q := ts.cfg.Quotas.MaxPendingJobs; q > 0 {
		pending := 0
		for _, f := range ts.funcs {
			pending += f.pendingTunes
		}
		if pending >= q {
			return "", fmt.Errorf("%w: tenant %q at max pending tune jobs (%d)", ErrQuota, ts.cfg.Name, q)
		}
	}
	instances := make([]autotuner.Instance, len(fs.reservoir))
	for i, o := range fs.reservoir {
		instances[i] = autotuner.Instance{
			ID:       fmt.Sprintf("obs-%d", o.Seq),
			Features: append([]float64(nil), o.Features...),
			Times:    append([]float64(nil), o.Times...),
		}
	}
	tenant, fn := ts.cfg.Name, fs.spec.Name
	// Detach the trace id from the request context: the job outlives the
	// request, and a live ctx must not leak cancellation into the worker.
	jobCtx := trace.With(context.Background(), trace.From(ctx))
	id, err := r.jobs.Submit(autotuner.TuneJob{
		Function:    tenant + "/" + fn,
		Owner:       tenant,
		Instances:   instances,
		Options:     r.cfg.Train,
		BaseVersion: fs.latest,
		Ctx:         jobCtx,
		Done:        func(st autotuner.JobStatus) { r.onTuneDone(tenant, fn, st) },
	})
	if err != nil {
		if errors.Is(err, autotuner.ErrQueueFull) {
			return "", fmt.Errorf("%w: tune queue full", ErrQuota)
		}
		if errors.Is(err, autotuner.ErrOwnerThrottled) {
			return "", fmt.Errorf("%w: tenant %q at fair-share tune limit", ErrQuota, tenant)
		}
		return "", err
	}
	fs.pendingTunes++
	if auto {
		fs.autoTuned = true
	}
	fs.detector.OnRetrainStart()
	r.jobMeta[id] = jobMeta{tenant: tenant, fn: fn}
	r.metrics.tunesSubmitted.Add(1)
	ts.tm.tunes.Add(1)
	r.cfg.Log.Event(ctx, "server", "tune.submit",
		trace.F("tenant", tenant), trace.F("fn", fn), trace.F("job", id),
		trace.F("auto", strconv.FormatBool(auto)),
		trace.F("corpus", strconv.Itoa(len(fs.reservoir))))
	return id, nil
}

// onTuneDone runs on a job-queue worker when a tune finishes: install the
// candidate (canary-staged) or record the failure. The job status carries
// the submitting request's trace id, so the staged canary inherits the
// provenance of the tune request that caused it.
func (r *Registry) onTuneDone(tenant, fn string, st autotuner.JobStatus) {
	ctx := trace.With(context.Background(), st.Trace)
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := r.tenant(tenant)
	if err != nil {
		return
	}
	fs, err := ts.fn(fn)
	if err != nil {
		return
	}
	fs.pendingTunes--
	if st.State != autotuner.JobDone {
		fs.autoTuned = false
		fs.detector.OnRetrainFailed()
		r.journalDriftLocked(ctx, tenant, fs) //nolint:errcheck // best-effort; no caller to surface to
		r.metrics.tunesFailed.Add(1)
		r.cfg.Log.Error(ctx, "server", "tune.failed",
			trace.F("tenant", tenant), trace.F("fn", fn), trace.F("job", st.ID),
			trace.F("state", string(st.State)), trace.F("error", st.Error))
		return
	}
	if err := r.installLocked(ctx, tenant, fs, st.Model, fs.autoTuned); err != nil {
		fs.autoTuned = false
		fs.detector.OnRetrainFailed()
		r.journalDriftLocked(ctx, tenant, fs) //nolint:errcheck // best-effort; no caller to surface to
		r.metrics.tunesFailed.Add(1)
		r.cfg.Log.Error(ctx, "server", "tune.failed",
			trace.F("tenant", tenant), trace.F("fn", fn), trace.F("job", st.ID),
			trace.F("state", "uninstallable"), trace.F("error", err.Error()))
		return
	}
	r.metrics.tunesDone.Add(1)
	r.cfg.Log.Event(ctx, "server", "tune.done",
		trace.F("tenant", tenant), trace.F("fn", fn), trace.F("job", st.ID),
		trace.F("version", strconv.Itoa(st.Version)))
}

// Job reports a tune job's status; jobs are tenant-scoped.
func (r *Registry) Job(tenant, id string) (autotuner.JobStatus, error) {
	r.mu.Lock()
	meta, ok := r.jobMeta[id]
	r.mu.Unlock()
	if !ok || meta.tenant != tenant {
		return autotuner.JobStatus{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	st, ok := r.jobs.Status(id)
	if !ok {
		return autotuner.JobStatus{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	st.Model = nil // distributed as an artifact, not via job status
	return st, nil
}

// --- persistence ---------------------------------------------------------

type persistedDeployment struct {
	Stable  int    `json:"stable"`
	Latest  int    `json:"latest"`
	LastDec string `json:"last_decision"`
	// LastDecTrace makes the settling request's trace id durable with the
	// pointer it settled, so "which request promoted v3" survives restarts.
	LastDecTrace string `json:"last_decision_trace,omitempty"`
}

func (r *Registry) funcDir(tenant, fn string) string {
	return filepath.Join(r.cfg.DataDir, tenant, fn)
}

func (r *Registry) persistSpec(tenant string, spec FunctionSpec) error {
	if r.cfg.DataDir == "" {
		return nil
	}
	dir := r.funcDir(tenant, spec.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "spec.json"), data, 0o644)
}

// persistArtifact writes the newest artifact and the deployment pointer.
// The canary episode is persisted separately, through the write-ahead
// journal; with journaling disabled, a daemon restart aborts in-flight
// canaries back to the stable version, which is the safe default.
func (r *Registry) persistArtifact(tenant string, fs *funcState) error {
	if r.cfg.DataDir == "" {
		return nil
	}
	dir := r.funcDir(tenant, fs.spec.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if a, ok := fs.artifacts[fs.latest]; ok {
		name := filepath.Join(dir, fmt.Sprintf("v%06d.model", a.version))
		if _, err := os.Stat(name); errors.Is(err, os.ErrNotExist) {
			if err := os.WriteFile(name, a.data, 0o644); err != nil {
				return err
			}
		}
	}
	dep, err := json.Marshal(persistedDeployment{Stable: fs.stable, Latest: fs.latest,
		LastDec: fs.lastDec, LastDecTrace: fs.lastDecTrace})
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "deployment.json"), dep, 0o644)
}

// load restores specs, artifacts and deployment pointers from DataDir.
func (r *Registry) load() error {
	for name, ts := range r.tenants {
		tdir := filepath.Join(r.cfg.DataDir, name)
		entries, err := os.ReadDir(tdir)
		if errors.Is(err, os.ErrNotExist) {
			continue
		} else if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			fs, err := r.loadFunc(filepath.Join(tdir, e.Name()))
			if err != nil {
				return fmt.Errorf("server: loading %s/%s: %w", name, e.Name(), err)
			}
			if fs != nil {
				ts.funcs[fs.spec.Name] = fs
				r.metrics.functions.Add(1)
			}
		}
	}
	return nil
}

func (r *Registry) loadFunc(dir string) (*funcState, error) {
	specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	} else if err != nil {
		return nil, err
	}
	var spec FunctionSpec
	if err := json.Unmarshal(specData, &spec); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	fs := r.newFuncState(spec)
	matches, err := filepath.Glob(filepath.Join(dir, "v*.model"))
	if err != nil {
		return nil, err
	}
	for _, m := range matches {
		var v int
		if _, err := fmt.Sscanf(filepath.Base(m), "v%d.model", &v); err != nil || v <= 0 {
			continue
		}
		data, err := os.ReadFile(m)
		if err != nil {
			return nil, err
		}
		if _, err := ml.DecodeArtifact(data, ""); err != nil {
			return nil, fmt.Errorf("artifact %s: %w", filepath.Base(m), err)
		}
		fs.artifacts[v] = artifact{version: v, data: data, etag: ml.ETagOf(data)}
		if v > fs.latest {
			fs.latest = v
		}
	}
	depData, err := os.ReadFile(filepath.Join(dir, "deployment.json"))
	if err == nil {
		var dep persistedDeployment
		if err := json.Unmarshal(depData, &dep); err != nil {
			return nil, err
		}
		if _, ok := fs.artifacts[dep.Stable]; ok {
			fs.stable = dep.Stable
			fs.lastDec = dep.LastDec
			fs.lastDecTrace = trace.Sanitize(dep.LastDecTrace)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	// A canary that was live at shutdown is not restored here: journal
	// replay (openAndReplayJournal) resumes it. With journaling disabled,
	// clients fall back to stable and the next drift episode re-stages the
	// candidate.
	return fs, nil
}
