package server

// Journal framing, crash-recovery and corruption-quarantine tests. The
// registry-level cases drive the real API surface (register, push, report)
// against a DataDir, then rebuild the registry over the same directory and
// assert what survived — kill() for crash semantics, Close() for orderly
// shutdown.

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"nitro/internal/online"
)

func newJournalRegistry(t *testing.T, dir string, mutate func(*RegistryConfig)) *Registry {
	t.Helper()
	cfg := RegistryConfig{Tenants: testTenants(), DataDir: dir}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// stageCanary registers the test function, promotes v1, stages a v2 canary
// and reports some (insufficient) fleet progress against it.
func stageCanary(t *testing.T, r *Registry, calls, failures int64) {
	t.Helper()
	if err := r.RegisterFunction(context.Background(), "acme", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushModel(context.Background(), "acme", "sort", boundaryArtifact(t, 4.5), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushModel(context.Background(), "acme", "sort", boundaryArtifact(t, 6.5), ""); err != nil {
		t.Fatal(err)
	}
	if calls > 0 {
		dec, _, err := r.ReportCanary(context.Background(), "acme", "sort", 2, "", calls, failures)
		if err != nil || dec != DecisionPending {
			t.Fatalf("staging report: decision %q err %v, want pending", dec, err)
		}
	}
}

// TestJournalResumeAfterKill: a killed daemon's restart resumes the
// in-flight canary at its recorded gate and fleet-aggregated counts.
func TestJournalResumeAfterKill(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	stageCanary(t, r, 20, 1)
	r.kill()

	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	rec := r2.Recovery()
	if rec.CleanShutdown {
		t.Fatal("kill() reported a clean shutdown")
	}
	if rec.ResumedCanaries != 1 || rec.TailError != nil {
		t.Fatalf("recovery %+v, want one resumed canary and an intact tail", rec)
	}
	dep, err := r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	c := dep.Canary
	if c == nil || c.Version != 2 || c.Calls != 20 || c.Failures != 1 {
		t.Fatalf("resumed canary = %+v, want v2 with 20 calls / 1 failure", c)
	}
	// The resumed episode settles normally: enough healthy reports promote.
	dec, _, err := r2.ReportCanary(context.Background(), "acme", "sort", 2, "", c.MinSamples-c.Calls, 0)
	if err != nil || dec != DecisionPromoted {
		t.Fatalf("post-resume verdict %q err %v, want promoted", dec, err)
	}
}

// TestJournalCleanShutdown: Close writes the marker; the next start
// reports CleanShutdown and still resumes the live canary.
func TestJournalCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	stageCanary(t, r, 5, 0)
	r.Close()

	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	rec := r2.Recovery()
	if !rec.CleanShutdown {
		t.Fatalf("recovery %+v, want CleanShutdown after Close", rec)
	}
	dep, err := r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Canary == nil || dep.Canary.Calls != 5 {
		t.Fatalf("canary %+v, want resumed with 5 calls after orderly shutdown", dep.Canary)
	}
}

// TestJournalCorruptTailQuarantined: a torn tail (simulating death
// mid-append) is quarantined with a typed error; the intact prefix still
// replays and the daemon starts.
func TestJournalCorruptTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	stageCanary(t, r, 20, 1)
	r.kill()

	// Tear the tail: chop the last 3 bytes off the final frame.
	path := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	rec := r2.Recovery()
	if rec.TailError == nil || rec.CorruptTail == "" {
		t.Fatalf("recovery %+v, want a typed corrupt-tail error", rec)
	}
	var tail *CorruptTailError
	if !errors.As(rec.TailError, &tail) {
		t.Fatalf("TailError %T is not *CorruptTailError", rec.TailError)
	}
	if rec.QuarantinePath == "" {
		t.Fatal("corrupt tail was not quarantined to a side file")
	}
	if _, err := os.Stat(rec.QuarantinePath); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The torn record was the last progress report; the canary still
	// resumes from the previous intact progress record.
	dep, err := r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Canary == nil || dep.Canary.Version != 2 {
		t.Fatalf("canary %+v, want v2 resumed from the intact prefix", dep.Canary)
	}
}

// TestJournalChecksumMismatchQuarantined: a bit flip inside a frame body
// fails the CRC and quarantines from that frame on — no panic, no replay
// of the poisoned record.
func TestJournalChecksumMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	stageCanary(t, r, 20, 1)
	r.kill()

	path := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	rec := r2.Recovery()
	if rec.TailError == nil {
		t.Fatalf("recovery %+v, want checksum corruption detected", rec)
	}
	if rec.CleanShutdown {
		t.Fatal("corrupt tail cannot be a clean shutdown")
	}
}

// TestJournalGarbageFile: a journal that is pure garbage from byte zero
// quarantines whole; the daemon starts with artifact-store state only.
func TestJournalGarbageFile(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	stageCanary(t, r, 20, 1)
	r.kill()

	path := filepath.Join(dir, "journal.wal")
	if err := os.WriteFile(path, []byte("not a journal at all, sorry"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	rec := r2.Recovery()
	if rec.TailError == nil || rec.RecordsReplayed != 0 {
		t.Fatalf("recovery %+v, want zero replays and a corruption report", rec)
	}
	// No journal evidence: the canary aborts to stable, the pre-journal
	// behavior.
	dep, err := r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Canary != nil || dep.Stable != 1 {
		t.Fatalf("deployment %+v, want canary aborted and stable v1", dep)
	}
}

// TestJournalValidatesAgainstArtifacts: a canary_start whose artifact was
// deleted out from under the journal is dropped, not resumed against
// missing bytes.
func TestJournalValidatesAgainstArtifacts(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	stageCanary(t, r, 20, 1)
	r.kill()

	if err := os.Remove(filepath.Join(dir, "acme", "sort", "v000002.model")); err != nil {
		t.Fatal(err)
	}

	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	rec := r2.Recovery()
	if rec.ResumedCanaries != 0 || rec.DroppedRecords == 0 {
		t.Fatalf("recovery %+v, want the orphaned canary records dropped", rec)
	}
	dep, err := r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Canary != nil || dep.Stable != 1 {
		t.Fatalf("deployment %+v, want stable v1 and no canary", dep)
	}
}

// TestJournalWALFirstPromotion: a canary_end(promoted) record with a stale
// deployment.json (crash between the journal append and the pointer
// rewrite) replays to the promoted state.
func TestJournalWALFirstPromotion(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	stageCanary(t, r, 0, 0)
	r.kill()

	// Hand-append the verdict the crashed daemon journaled but never
	// applied to deployment.json.
	appendRawRecord(t, filepath.Join(dir, "journal.wal"),
		`{"op":"canary_end","tenant":"acme","fn":"sort","version":2,"decision":"promoted"}`)

	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	dep, err := r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 2 || dep.Canary != nil || dep.LastDecision != DecisionPromoted {
		t.Fatalf("deployment %+v, want v2 promoted by WAL replay", dep)
	}

	// The replayed verdict must also be durable: recovery rewrote
	// deployment.json before compacting away the canary_end record, so a
	// second restart — with no further traffic to re-trigger a persist —
	// still sees the promotion instead of silently reverting to v1.
	r2.kill()
	r3 := newJournalRegistry(t, dir, nil)
	defer r3.Close()
	dep, err = r3.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 2 || dep.LastDecision != DecisionPromoted {
		t.Fatalf("second-restart deployment %+v, want the replayed promotion persisted", dep)
	}
}

// TestCanaryReportIdempotentPerReporter: reporter-keyed reports carry
// cumulative totals, so a report replayed by an at-least-once retry layer
// advances nothing; the per-reporter baselines ride canary_progress
// records, keeping the dedup intact across a daemon crash.
func TestCanaryReportIdempotentPerReporter(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	stageCanary(t, r, 0, 0)

	report := func(reg *Registry, reporter string, calls, failures, wantCalls, wantFails int64) {
		t.Helper()
		dec, dep, err := reg.ReportCanary(context.Background(), "acme", "sort", 2, reporter, calls, failures)
		if err != nil || dec != DecisionPending {
			t.Fatalf("report(%q,%d,%d): (%q, %v), want pending", reporter, calls, failures, dec, err)
		}
		if dep.Canary.Calls != wantCalls || dep.Canary.Failures != wantFails {
			t.Fatalf("fleet counters %d/%d after report(%q,%d,%d), want %d/%d",
				dep.Canary.Calls, dep.Canary.Failures, reporter, calls, failures, wantCalls, wantFails)
		}
	}

	report(r, "p1", 20, 1, 20, 1)
	// The response was lost and the client retried the identical body: the
	// fleet aggregate must not move.
	report(r, "p1", 20, 1, 20, 1)
	// Progress folds in only the movement past the baseline; a second
	// reporter contributes independently; anonymous deltas apply verbatim.
	report(r, "p1", 25, 1, 25, 1)
	report(r, "p2", 10, 0, 35, 1)
	report(r, "", 4, 0, 39, 1)

	// Crash mid-episode: the baselines replay from the journal, so even a
	// report retried *across the restart* is still a no-op.
	r.kill()
	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	report(r2, "p2", 10, 0, 39, 1)
	// A reporter whose counters went backwards restarted its local canary
	// slot; its fresh totals contribute from a zero baseline.
	report(r2, "p1", 5, 0, 44, 1)
}

// appendRawRecord frames and appends one JSON payload to a journal file.
func appendRawRecord(t *testing.T, path, payload string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE([]byte(payload)))
	copy(frame[8:], payload)
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCompaction: once the log passes the compaction threshold it
// is rewritten to the live state — strictly smaller, still resumable.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, func(cfg *RegistryConfig) {
		cfg.JournalCompactBytes = 256 // force compaction on the first verdict
	})
	stageCanary(t, r, 0, 0)
	// Roll the canary back (failure rate 100%) — the verdict triggers the
	// size check and compacts.
	if dec, _, err := r.ReportCanary(context.Background(), "acme", "sort", 2, "", 60, 60); err != nil || dec != DecisionRolledBack {
		t.Fatalf("decision %v err %v, want rolledback", dec, err)
	}
	size := r.journal.sizeBytes()
	if size == 0 {
		t.Fatal("compacted journal is empty (live drift state should remain)")
	}
	// Stage a fresh canary over the compacted log and prove a restart
	// still resumes it.
	if _, err := r.PushModel(context.Background(), "acme", "sort", boundaryArtifact(t, 2.5), ""); err != nil {
		t.Fatal(err)
	}
	r.kill()
	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	dep, err := r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Canary == nil || dep.Canary.Version != 3 {
		t.Fatalf("canary %+v, want v3 resumed after compaction", dep.Canary)
	}
}

// TestJournalDriftStateSurvivesRestart: fleet drift detector counters and
// state ride the journal across an orderly shutdown.
func TestJournalDriftStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, nil)
	if err := r.RegisterFunction(context.Background(), "acme", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushModel(context.Background(), "acme", "sort", boundaryArtifact(t, 4.5), ""); err != nil {
		t.Fatal(err)
	}
	samples := make([]online.RemoteSample, 10)
	for i := range samples {
		samples[i] = online.RemoteSample{Features: []float64{float64(i)}, Times: []float64{1, 2}, Predicted: 0}
	}
	if _, err := r.PushObservations(context.Background(), "acme", "sort", samples); err != nil {
		t.Fatal(err)
	}
	before, err := r.Status("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2 := newJournalRegistry(t, dir, nil)
	defer r2.Close()
	after, err := r2.Status("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if after.Drift.Samples != before.Drift.Samples || after.Drift.State != before.Drift.State {
		t.Fatalf("drift after restart %+v, want %+v", after.Drift, before.Drift)
	}
}
