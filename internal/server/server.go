package server

// Daemon assembly: the registry's API plus the repo's telemetry surface
// (Prometheus /metrics, /vars, /healthz) on one hardened listener. The
// listener construction is obs.ServeHandler, so the daemon inherits the
// same Slowloris timeouts and graceful-shutdown behaviour as the metrics
// endpoint — one hardening path, not two.

import (
	"context"
	"net/http"
	"sync/atomic"

	"nitro/internal/obs"
)

// serverMetrics counts registry activity; exported through an obs.Collector
// as nitro_server_* series.
type serverMetrics struct {
	requests           atomic.Int64
	authFailures       atomic.Int64
	functions          atomic.Int64
	samplesIngested    atomic.Int64
	samplesRejected    atomic.Int64
	artifactPulls      atomic.Int64
	pullsNotModified   atomic.Int64
	artifactsStored    atomic.Int64
	tunesSubmitted     atomic.Int64
	tunesDone          atomic.Int64
	tunesFailed        atomic.Int64
	autoTunes          atomic.Int64
	canariesStarted    atomic.Int64
	canariesPromoted   atomic.Int64
	canariesRolledBack atomic.Int64
}

// Collector exports the registry's counters.
func (r *Registry) Collector() obs.Collector {
	counter := func(name, help string, v *atomic.Int64) obs.Metric {
		return obs.Metric{Name: name, Help: help, Kind: obs.KindCounter, Value: float64(v.Load())}
	}
	return func(emit func(obs.Metric)) {
		m := &r.metrics
		emit(counter("nitro_server_requests_total", "API requests received.", &m.requests))
		emit(counter("nitro_server_auth_failures_total", "Requests rejected for bad or missing tokens.", &m.authFailures))
		emit(obs.Metric{Name: "nitro_server_functions", Help: "Registered functions across all tenants.",
			Kind: obs.KindGauge, Value: float64(m.functions.Load())})
		emit(counter("nitro_server_observations_total", "Observation samples ingested.", &m.samplesIngested))
		emit(counter("nitro_server_observations_rejected_total", "Observation samples rejected by rate limits.", &m.samplesRejected))
		emit(counter("nitro_server_artifact_pulls_total", "Model artifact pulls served (including 304s).", &m.artifactPulls))
		emit(counter("nitro_server_artifact_pulls_not_modified_total", "Model pulls answered 304 via If-None-Match.", &m.pullsNotModified))
		emit(counter("nitro_server_artifacts_stored_total", "Model artifact versions stored.", &m.artifactsStored))
		emit(counter("nitro_server_tune_jobs_submitted_total", "Tune jobs submitted.", &m.tunesSubmitted))
		emit(counter("nitro_server_tune_jobs_done_total", "Tune jobs finished successfully.", &m.tunesDone))
		emit(counter("nitro_server_tune_jobs_failed_total", "Tune jobs that failed or produced an uninstallable model.", &m.tunesFailed))
		emit(counter("nitro_server_auto_tunes_total", "Tune jobs auto-triggered by fleet drift detection.", &m.autoTunes))
		emit(counter("nitro_server_canaries_started_total", "Canary episodes started.", &m.canariesStarted))
		emit(counter("nitro_server_canaries_promoted_total", "Canary episodes that promoted the challenger.", &m.canariesPromoted))
		emit(counter("nitro_server_canaries_rolled_back_total", "Canary episodes rolled back.", &m.canariesRolledBack))
	}
}

// Config assembles a daemon.
type Config struct {
	// Addr is the listen address (e.g. ":9090"; ":0" picks a free port).
	Addr string
	// Registry configures tenants, quotas, tuning and canary gating.
	Registry RegistryConfig
	// HTTP hardens the listener; the zero value selects obs defaults.
	HTTP obs.ServerConfig
}

// Daemon is a running nitro-server: registry + telemetry on one listener.
type Daemon struct {
	reg *Registry
	obs *obs.Registry
	srv *obs.Server
}

// NewDaemon builds the registry and its telemetry registry without
// listening yet.
func NewDaemon(cfg Config) (*Daemon, error) {
	reg, err := NewRegistry(cfg.Registry)
	if err != nil {
		return nil, err
	}
	oreg := obs.NewRegistry()
	oreg.Register(reg.Collector())
	return &Daemon{reg: reg, obs: oreg}, nil
}

// Registry exposes the daemon's registry (tests and the smoke harness).
func (d *Daemon) Registry() *Registry { return d.reg }

// Obs exposes the daemon's telemetry registry for extra collectors.
func (d *Daemon) Obs() *obs.Registry { return d.obs }

// Handler returns the daemon's full HTTP surface: the authenticated API
// under /api/v1 plus the telemetry routes at the root.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", d.reg.APIHandler())
	mux.Handle("/", d.obs.Handler())
	return mux
}

// Start listens on cfg.Addr with the hardened obs listener path.
func (d *Daemon) Start(cfg Config) error {
	srv, err := obs.ServeHandler(cfg.Addr, d.Handler(), cfg.HTTP)
	if err != nil {
		return err
	}
	d.srv = srv
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (d *Daemon) Addr() string {
	if d.srv == nil {
		return ""
	}
	return d.srv.Addr()
}

// Shutdown gracefully drains in-flight requests, then stops the tuning
// workers.
func (d *Daemon) Shutdown(ctx context.Context) error {
	var err error
	if d.srv != nil {
		err = d.srv.Shutdown(ctx)
	}
	d.reg.Close()
	return err
}
