package server

// Daemon assembly: the registry's API plus the repo's telemetry surface
// (Prometheus /metrics, /vars, /healthz) on one hardened listener. The
// listener construction is obs.ServeHandler, so the daemon inherits the
// same Slowloris timeouts and graceful-shutdown behaviour as the metrics
// endpoint — one hardening path, not two.

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync/atomic"

	"nitro/internal/obs"
	"nitro/internal/obs/trace"
)

// serverMetrics counts registry activity; exported through an obs.Collector
// as nitro_server_* series.
type serverMetrics struct {
	requests           atomic.Int64
	authFailures       atomic.Int64
	functions          atomic.Int64
	samplesIngested    atomic.Int64
	samplesRejected    atomic.Int64
	artifactPulls      atomic.Int64
	pullsNotModified   atomic.Int64
	artifactsStored    atomic.Int64
	tunesSubmitted     atomic.Int64
	tunesDone          atomic.Int64
	tunesFailed        atomic.Int64
	autoTunes          atomic.Int64
	canariesStarted    atomic.Int64
	canariesPromoted   atomic.Int64
	canariesRolledBack atomic.Int64
	canariesResumed    atomic.Int64
	bakeoffPromotes    atomic.Int64
	bakeoffRejects     atomic.Int64
	bakeoffTimeouts    atomic.Int64

	journalAppends     atomic.Int64
	journalReplayed    atomic.Int64
	journalDropped     atomic.Int64
	journalQuarantined atomic.Int64
	journalCompactions atomic.Int64

	shedObservations atomic.Int64
	shedPulls        atomic.Int64
	shedControl      atomic.Int64
	shedRecoveries   atomic.Int64
}

// Collector exports the registry's counters.
func (r *Registry) Collector() obs.Collector {
	counter := func(name, help string, v *atomic.Int64) obs.Metric {
		return obs.Metric{Name: name, Help: help, Kind: obs.KindCounter, Value: float64(v.Load())}
	}
	return func(emit func(obs.Metric)) {
		m := &r.metrics
		emit(counter("nitro_server_requests_total", "API requests received.", &m.requests))
		emit(counter("nitro_server_auth_failures_total", "Requests rejected for bad or missing tokens.", &m.authFailures))
		emit(obs.Metric{Name: "nitro_server_functions", Help: "Registered functions across all tenants.",
			Kind: obs.KindGauge, Value: float64(m.functions.Load())})
		emit(counter("nitro_server_observations_total", "Observation samples ingested.", &m.samplesIngested))
		emit(counter("nitro_server_observations_rejected_total", "Observation samples rejected by rate limits.", &m.samplesRejected))
		emit(counter("nitro_server_artifact_pulls_total", "Model artifact pulls served (including 304s).", &m.artifactPulls))
		emit(counter("nitro_server_artifact_pulls_not_modified_total", "Model pulls answered 304 via If-None-Match.", &m.pullsNotModified))
		emit(counter("nitro_server_artifacts_stored_total", "Model artifact versions stored.", &m.artifactsStored))
		emit(counter("nitro_server_tune_jobs_submitted_total", "Tune jobs submitted.", &m.tunesSubmitted))
		emit(counter("nitro_server_tune_jobs_done_total", "Tune jobs finished successfully.", &m.tunesDone))
		emit(counter("nitro_server_tune_jobs_failed_total", "Tune jobs that failed or produced an uninstallable model.", &m.tunesFailed))
		emit(counter("nitro_server_auto_tunes_total", "Tune jobs auto-triggered by fleet drift detection.", &m.autoTunes))
		emit(counter("nitro_server_canaries_started_total", "Canary episodes started.", &m.canariesStarted))
		emit(counter("nitro_server_canaries_promoted_total", "Canary episodes that promoted the challenger.", &m.canariesPromoted))
		emit(counter("nitro_server_canaries_rolled_back_total", "Canary episodes rolled back.", &m.canariesRolledBack))
		emit(counter("nitro_server_canaries_resumed_total", "Canary episodes resumed from the journal after a restart.", &m.canariesResumed))
		emit(counter("nitro_server_bakeoff_promotes_total", "Canary episodes settled early by the sequential bakeoff promoting the challenger.", &m.bakeoffPromotes))
		emit(counter("nitro_server_bakeoff_rejects_total", "Canary episodes settled early by the sequential bakeoff rejecting the challenger.", &m.bakeoffRejects))
		emit(counter("nitro_server_bakeoff_timeouts_total", "Sequential bakeoffs that exhausted their sample budget undecided.", &m.bakeoffTimeouts))
		emit(counter("nitro_server_journal_appends_total", "Durable journal records appended.", &m.journalAppends))
		emit(counter("nitro_server_journal_records_replayed_total", "Journal records replayed at startup.", &m.journalReplayed))
		emit(counter("nitro_server_journal_records_dropped_total", "Journal records dropped at replay (uncorroborated by the artifact store).", &m.journalDropped))
		emit(counter("nitro_server_journal_tail_quarantined_total", "Corrupt journal tails quarantined at startup.", &m.journalQuarantined))
		emit(counter("nitro_server_journal_compactions_total", "Journal compactions (snapshot + truncate).", &m.journalCompactions))
		shed := func(class string, v *atomic.Int64) obs.Metric {
			return obs.Counter("nitro_server_shed_total", "Requests shed by overload admission control.",
				float64(v.Load()), obs.Label{Key: "class", Value: class})
		}
		emit(shed("observations", &m.shedObservations))
		emit(shed("pulls", &m.shedPulls))
		emit(shed("control", &m.shedControl))
		emit(counter("nitro_server_shed_recoveries_total", "Transitions from shedding back to full admission.", &m.shedRecoveries))

		// Per-tenant activity split. Cardinality is bounded: the tenant set
		// is fixed at construction, never minted from request data.
		tenant := func(name, help, tn string, v int64) obs.Metric {
			return obs.Counter(name, help, float64(v), obs.Label{Key: "tenant", Value: tn})
		}
		r.mu.Lock()
		var tnames []string
		for n := range r.tenants {
			tnames = append(tnames, n)
		}
		sort.Strings(tnames)
		type tcounts struct {
			name                                  string
			requests, obsv, pulls, tunes, reports int64
		}
		counts := make([]tcounts, 0, len(tnames))
		for _, n := range tnames {
			tm := &r.tenants[n].tm
			counts = append(counts, tcounts{name: n, requests: tm.requests.Load(),
				obsv: tm.observations.Load(), pulls: tm.pulls.Load(),
				tunes: tm.tunes.Load(), reports: tm.canaryReports.Load()})
		}
		rec := r.recovery
		r.mu.Unlock()
		for _, c := range counts {
			emit(tenant("nitro_server_tenant_requests_total", "Authenticated API requests per tenant.", c.name, c.requests))
			emit(tenant("nitro_server_tenant_observations_total", "Observation samples ingested per tenant.", c.name, c.obsv))
			emit(tenant("nitro_server_tenant_artifact_pulls_total", "Model artifact pulls served per tenant (including 304s).", c.name, c.pulls))
			emit(tenant("nitro_server_tenant_tune_jobs_total", "Tune jobs submitted per tenant (manual and auto).", c.name, c.tunes))
			emit(tenant("nitro_server_tenant_canary_reports_total", "Canary reports accepted per tenant.", c.name, c.reports))
		}

		// Per-route latency. The route set is the fixed apiRoutes list.
		for _, route := range apiRoutes {
			if h := r.routeHist[route]; h != nil {
				emit(obs.HistogramMetric("nitro_server_http_request_seconds",
					"API request latency by route.", h, obs.DefaultBounds(),
					obs.Label{Key: "route", Value: route}))
			}
		}

		// Startup recovery outcome as gauges, so dashboards can alert on a
		// crashy daemon (clean_shutdown 0) or replay loss without scraping
		// /vars.
		b2f := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		gauge := func(name, help string, v float64) obs.Metric {
			return obs.Metric{Name: name, Help: help, Kind: obs.KindGauge, Value: v}
		}
		emit(gauge("nitro_server_recovery_journal", "Whether the durable journal is active (1) or disabled (0).", b2f(rec.Journal)))
		emit(gauge("nitro_server_recovery_clean_shutdown", "Whether the previous run shut down cleanly (1) or crashed (0).", b2f(rec.CleanShutdown)))
		emit(gauge("nitro_server_recovery_records_replayed", "Journal records replayed at the last startup.", float64(rec.RecordsReplayed)))
		emit(gauge("nitro_server_recovery_resumed_canaries", "Canary episodes resumed at the last startup.", float64(rec.ResumedCanaries)))
		emit(gauge("nitro_server_recovery_dropped_records", "Journal records dropped at the last startup.", float64(rec.DroppedRecords)))
		emit(gauge("nitro_server_recovery_corrupt_tail", "Whether the last startup quarantined a corrupt journal tail.", b2f(rec.CorruptTail != "")))
	}
}

// ObsConfig configures the daemon's observability plane: the structured
// event stream, trace-id minting, the flight recorder and the opt-in
// profiling surface. The zero value keeps the flight recorder (always on,
// it is cheap) and disables everything else.
type ObsConfig struct {
	// LogWriter receives the JSON slog event stream, one object per line
	// (nil disables the stream; events still reach the flight ring).
	LogWriter io.Writer
	// Debug lowers the stream threshold from Info to Debug, emitting
	// per-request events. Leave off in production: Debug events always
	// reach the flight ring regardless.
	Debug bool
	// Clock stamps log events (default time.Now; inject a fake for
	// byte-identical double-run transcripts).
	Clock trace.Clock
	// TraceSeed, when non-zero, makes server-minted trace ids
	// deterministic (tests and smoke transcripts); zero uses crypto/rand.
	TraceSeed int64
	// FlightCapacity sizes the flight ring (default
	// trace.DefaultFlightCapacity).
	FlightCapacity int
	// Profiling mounts net/http/pprof under /debug/pprof/ and registers
	// the Go runtime metrics collector. Off by default: the profiling
	// surface is unauthenticated, so only enable it on trusted networks.
	Profiling bool
}

// Config assembles a daemon.
type Config struct {
	// Addr is the listen address (e.g. ":9090"; ":0" picks a free port).
	Addr string
	// Registry configures tenants, quotas, tuning and canary gating.
	Registry RegistryConfig
	// HTTP hardens the listener; the zero value selects obs defaults.
	HTTP obs.ServerConfig
	// Obs configures tracing, logging, the flight recorder and profiling.
	Obs ObsConfig
}

// Daemon is a running nitro-server: registry + telemetry on one listener.
type Daemon struct {
	reg       *Registry
	obs       *obs.Registry
	srv       *obs.Server
	flight    *trace.Recorder
	profiling bool
}

// NewDaemon builds the registry and its telemetry registry without
// listening yet. The observability plane is assembled here: one flight
// recorder and one trace-stamped event log shared by the registry, the
// job queue and the admission controller.
func NewDaemon(cfg Config) (*Daemon, error) {
	capacity := cfg.Obs.FlightCapacity
	if capacity <= 0 {
		capacity = trace.DefaultFlightCapacity
	}
	flight := trace.NewRecorder(capacity)
	if cfg.Registry.Log == nil {
		level := slog.LevelInfo
		if cfg.Obs.Debug {
			level = slog.LevelDebug
		}
		cfg.Registry.Log = trace.NewLog(trace.LogConfig{
			Writer: cfg.Obs.LogWriter, Level: level,
			Clock: cfg.Obs.Clock, Recorder: flight,
		})
	} else if rec := cfg.Registry.Log.Recorder(); rec != nil {
		flight = rec
	}
	if cfg.Registry.TraceSource == nil && cfg.Obs.TraceSeed != 0 {
		cfg.Registry.TraceSource = trace.NewSeededSource(cfg.Obs.TraceSeed)
	}
	reg, err := NewRegistry(cfg.Registry)
	if err != nil {
		return nil, err
	}
	oreg := obs.NewRegistry()
	oreg.Register(reg.Collector())
	if cfg.Obs.Profiling {
		oreg.Register(obs.RuntimeCollector())
	}
	oreg.RegisterVar("recovery", func() any { return reg.Recovery() })
	return &Daemon{reg: reg, obs: oreg, flight: flight, profiling: cfg.Obs.Profiling}, nil
}

// Registry exposes the daemon's registry (tests and the smoke harness).
func (d *Daemon) Registry() *Registry { return d.reg }

// Obs exposes the daemon's telemetry registry for extra collectors.
func (d *Daemon) Obs() *obs.Registry { return d.obs }

// Flight exposes the daemon's flight recorder (the SIGQUIT dump path and
// tests read it directly).
func (d *Daemon) Flight() *trace.Recorder { return d.flight }

// Recovery reports what journal recovery did when the daemon started.
func (d *Daemon) Recovery() RecoveryReport { return d.reg.Recovery() }

// Handler returns the daemon's full HTTP surface: the authenticated API
// under /api/v1, the flight-recorder dump at /debug/flight, the optional
// pprof surface, plus the telemetry routes at the root.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", d.reg.APIHandler())
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(d.flight.DumpJSON())
	})
	if d.profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", d.obs.Handler())
	return mux
}

// Start listens on cfg.Addr with the hardened obs listener path.
func (d *Daemon) Start(cfg Config) error {
	srv, err := obs.ServeHandler(cfg.Addr, d.Handler(), cfg.HTTP)
	if err != nil {
		return err
	}
	d.srv = srv
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (d *Daemon) Addr() string {
	if d.srv == nil {
		return ""
	}
	return d.srv.Addr()
}

// Shutdown gracefully drains in-flight requests, stops the tuning workers,
// flushes pending fleet-drift state to the journal and writes the
// clean-shutdown marker, so the next start skips torn-tail forensics and
// resumes any live canary from a fully drained journal.
func (d *Daemon) Shutdown(ctx context.Context) error {
	var err error
	if d.srv != nil {
		err = d.srv.Shutdown(ctx)
	}
	d.reg.Close()
	return err
}

// Kill simulates a crash for chaos tests: the listener closes abruptly
// (in-flight requests are severed) and the registry's journal handle drops
// with no drain, marker or compaction — on-disk state is exactly what the
// fsync'd appends left behind, as after SIGKILL.
func (d *Daemon) Kill() {
	if d.srv != nil {
		d.srv.Close() //nolint:errcheck // crash semantics: nothing to report
	}
	d.reg.kill()
}

// ShedRecoveries reports how many times the admission controller
// transitioned from shedding back to full admission (benchmarks and the
// serving study read this without scraping /metrics).
func (d *Daemon) ShedRecoveries() int64 { return d.reg.metrics.shedRecoveries.Load() }
