package server

// Daemon assembly: the registry's API plus the repo's telemetry surface
// (Prometheus /metrics, /vars, /healthz) on one hardened listener. The
// listener construction is obs.ServeHandler, so the daemon inherits the
// same Slowloris timeouts and graceful-shutdown behaviour as the metrics
// endpoint — one hardening path, not two.

import (
	"context"
	"net/http"
	"sync/atomic"

	"nitro/internal/obs"
)

// serverMetrics counts registry activity; exported through an obs.Collector
// as nitro_server_* series.
type serverMetrics struct {
	requests           atomic.Int64
	authFailures       atomic.Int64
	functions          atomic.Int64
	samplesIngested    atomic.Int64
	samplesRejected    atomic.Int64
	artifactPulls      atomic.Int64
	pullsNotModified   atomic.Int64
	artifactsStored    atomic.Int64
	tunesSubmitted     atomic.Int64
	tunesDone          atomic.Int64
	tunesFailed        atomic.Int64
	autoTunes          atomic.Int64
	canariesStarted    atomic.Int64
	canariesPromoted   atomic.Int64
	canariesRolledBack atomic.Int64
	canariesResumed    atomic.Int64
	bakeoffPromotes    atomic.Int64
	bakeoffRejects     atomic.Int64
	bakeoffTimeouts    atomic.Int64

	journalAppends     atomic.Int64
	journalReplayed    atomic.Int64
	journalDropped     atomic.Int64
	journalQuarantined atomic.Int64
	journalCompactions atomic.Int64

	shedObservations atomic.Int64
	shedPulls        atomic.Int64
	shedControl      atomic.Int64
	shedRecoveries   atomic.Int64
}

// Collector exports the registry's counters.
func (r *Registry) Collector() obs.Collector {
	counter := func(name, help string, v *atomic.Int64) obs.Metric {
		return obs.Metric{Name: name, Help: help, Kind: obs.KindCounter, Value: float64(v.Load())}
	}
	return func(emit func(obs.Metric)) {
		m := &r.metrics
		emit(counter("nitro_server_requests_total", "API requests received.", &m.requests))
		emit(counter("nitro_server_auth_failures_total", "Requests rejected for bad or missing tokens.", &m.authFailures))
		emit(obs.Metric{Name: "nitro_server_functions", Help: "Registered functions across all tenants.",
			Kind: obs.KindGauge, Value: float64(m.functions.Load())})
		emit(counter("nitro_server_observations_total", "Observation samples ingested.", &m.samplesIngested))
		emit(counter("nitro_server_observations_rejected_total", "Observation samples rejected by rate limits.", &m.samplesRejected))
		emit(counter("nitro_server_artifact_pulls_total", "Model artifact pulls served (including 304s).", &m.artifactPulls))
		emit(counter("nitro_server_artifact_pulls_not_modified_total", "Model pulls answered 304 via If-None-Match.", &m.pullsNotModified))
		emit(counter("nitro_server_artifacts_stored_total", "Model artifact versions stored.", &m.artifactsStored))
		emit(counter("nitro_server_tune_jobs_submitted_total", "Tune jobs submitted.", &m.tunesSubmitted))
		emit(counter("nitro_server_tune_jobs_done_total", "Tune jobs finished successfully.", &m.tunesDone))
		emit(counter("nitro_server_tune_jobs_failed_total", "Tune jobs that failed or produced an uninstallable model.", &m.tunesFailed))
		emit(counter("nitro_server_auto_tunes_total", "Tune jobs auto-triggered by fleet drift detection.", &m.autoTunes))
		emit(counter("nitro_server_canaries_started_total", "Canary episodes started.", &m.canariesStarted))
		emit(counter("nitro_server_canaries_promoted_total", "Canary episodes that promoted the challenger.", &m.canariesPromoted))
		emit(counter("nitro_server_canaries_rolled_back_total", "Canary episodes rolled back.", &m.canariesRolledBack))
		emit(counter("nitro_server_canaries_resumed_total", "Canary episodes resumed from the journal after a restart.", &m.canariesResumed))
		emit(counter("nitro_server_bakeoff_promotes_total", "Canary episodes settled early by the sequential bakeoff promoting the challenger.", &m.bakeoffPromotes))
		emit(counter("nitro_server_bakeoff_rejects_total", "Canary episodes settled early by the sequential bakeoff rejecting the challenger.", &m.bakeoffRejects))
		emit(counter("nitro_server_bakeoff_timeouts_total", "Sequential bakeoffs that exhausted their sample budget undecided.", &m.bakeoffTimeouts))
		emit(counter("nitro_server_journal_appends_total", "Durable journal records appended.", &m.journalAppends))
		emit(counter("nitro_server_journal_records_replayed_total", "Journal records replayed at startup.", &m.journalReplayed))
		emit(counter("nitro_server_journal_records_dropped_total", "Journal records dropped at replay (uncorroborated by the artifact store).", &m.journalDropped))
		emit(counter("nitro_server_journal_tail_quarantined_total", "Corrupt journal tails quarantined at startup.", &m.journalQuarantined))
		emit(counter("nitro_server_journal_compactions_total", "Journal compactions (snapshot + truncate).", &m.journalCompactions))
		shed := func(class string, v *atomic.Int64) obs.Metric {
			return obs.Counter("nitro_server_shed_total", "Requests shed by overload admission control.",
				float64(v.Load()), obs.Label{Key: "class", Value: class})
		}
		emit(shed("observations", &m.shedObservations))
		emit(shed("pulls", &m.shedPulls))
		emit(shed("control", &m.shedControl))
		emit(counter("nitro_server_shed_recoveries_total", "Transitions from shedding back to full admission.", &m.shedRecoveries))
	}
}

// Config assembles a daemon.
type Config struct {
	// Addr is the listen address (e.g. ":9090"; ":0" picks a free port).
	Addr string
	// Registry configures tenants, quotas, tuning and canary gating.
	Registry RegistryConfig
	// HTTP hardens the listener; the zero value selects obs defaults.
	HTTP obs.ServerConfig
}

// Daemon is a running nitro-server: registry + telemetry on one listener.
type Daemon struct {
	reg *Registry
	obs *obs.Registry
	srv *obs.Server
}

// NewDaemon builds the registry and its telemetry registry without
// listening yet.
func NewDaemon(cfg Config) (*Daemon, error) {
	reg, err := NewRegistry(cfg.Registry)
	if err != nil {
		return nil, err
	}
	oreg := obs.NewRegistry()
	oreg.Register(reg.Collector())
	return &Daemon{reg: reg, obs: oreg}, nil
}

// Registry exposes the daemon's registry (tests and the smoke harness).
func (d *Daemon) Registry() *Registry { return d.reg }

// Obs exposes the daemon's telemetry registry for extra collectors.
func (d *Daemon) Obs() *obs.Registry { return d.obs }

// Handler returns the daemon's full HTTP surface: the authenticated API
// under /api/v1 plus the telemetry routes at the root.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", d.reg.APIHandler())
	mux.Handle("/", d.obs.Handler())
	return mux
}

// Start listens on cfg.Addr with the hardened obs listener path.
func (d *Daemon) Start(cfg Config) error {
	srv, err := obs.ServeHandler(cfg.Addr, d.Handler(), cfg.HTTP)
	if err != nil {
		return err
	}
	d.srv = srv
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (d *Daemon) Addr() string {
	if d.srv == nil {
		return ""
	}
	return d.srv.Addr()
}

// Shutdown gracefully drains in-flight requests, stops the tuning workers,
// flushes pending fleet-drift state to the journal and writes the
// clean-shutdown marker, so the next start skips torn-tail forensics and
// resumes any live canary from a fully drained journal.
func (d *Daemon) Shutdown(ctx context.Context) error {
	var err error
	if d.srv != nil {
		err = d.srv.Shutdown(ctx)
	}
	d.reg.Close()
	return err
}

// Kill simulates a crash for chaos tests: the listener closes abruptly
// (in-flight requests are severed) and the registry's journal handle drops
// with no drain, marker or compaction — on-disk state is exactly what the
// fsync'd appends left behind, as after SIGKILL.
func (d *Daemon) Kill() {
	if d.srv != nil {
		d.srv.Close() //nolint:errcheck // crash semantics: nothing to report
	}
	d.reg.kill()
}

// ShedRecoveries reports how many times the admission controller
// transitioned from shedding back to full admission (benchmarks and the
// serving study read this without scraping /metrics).
func (d *Daemon) ShedRecoveries() int64 { return d.reg.metrics.shedRecoveries.Load() }
