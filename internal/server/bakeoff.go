package server

// Sequential canary bakeoff: when CanaryPolicy.Sequential is set, a canary
// episode carries a paired-timing experiment (ensemble.Bakeoff) fed by the
// observation stream the fleet already pushes. Each pushed sample carries
// the full per-variant timing vector, so the daemon can score the
// challenger's pick against the stable model's pick on the *same* input —
// a paired delta — and stop the episode the moment the evidence clears the
// t-bound, instead of waiting for a fixed fleet sample count. The running
// experiment state is journaled with every progress record, so a daemon
// crash mid-bakeoff resumes the experiment exactly where the fsync'd
// appends left it and converges to the same verdict on the same stream.

import (
	"context"
	"fmt"
	"math"

	"nitro/internal/ensemble"
	"nitro/internal/ml"
	"nitro/internal/obs/trace"
	"nitro/internal/online"
)

// decodedLocked returns the decoded model for a stored artifact version,
// caching per episode (the cache is dropped when the episode settles);
// registry mu must be held.
func (fs *funcState) decodedLocked(version int) *ml.Model {
	if m, ok := fs.decoded[version]; ok {
		return m
	}
	a, ok := fs.artifacts[version]
	if !ok {
		return nil
	}
	m, err := ml.DecodeArtifact(a.data, "")
	if err != nil {
		return nil
	}
	if fs.decoded == nil {
		fs.decoded = make(map[int]*ml.Model)
	}
	fs.decoded[version] = m
	return m
}

// pairedDelta scores one pushed sample for the live bakeoff: the relative
// speedup of the challenger's predicted variant over the incumbent's, on
// the timings the client actually observed. ok is false when the sample
// carries no usable pair (infeasible incumbent pick, out-of-range class).
func pairedDelta(inc, chal *ml.Model, s online.RemoteSample) (float64, bool) {
	pi := inc.Predict(s.Features)
	if pi < 0 || pi >= len(s.Times) {
		return 0, false
	}
	ti := s.Times[pi]
	if math.IsInf(ti, 1) || ti <= 0 {
		return 0, false
	}
	pc := chal.Predict(s.Features)
	switch {
	case pc == pi:
		return 0, true // same pick: a genuine zero-difference pair
	case pc < 0 || pc >= len(s.Times):
		return 0, false
	case math.IsInf(s.Times[pc], 1):
		return -1, true // challenger picked an infeasible variant: maximal loss
	default:
		return (ti - s.Times[pc]) / ti, true
	}
}

// feedCanaryBakeoffLocked folds one pushed batch into the live sequential
// bakeoff (no-op when the episode has none). A verdict settles the episode
// through the same path as the failure-rate gate; an undecided batch
// journals the experiment's cumulative state so a crash resumes mid-count.
// Registry mu must be held.
func (r *Registry) feedCanaryBakeoffLocked(ctx context.Context, tenant string, fs *funcState, samples []online.RemoteSample) error {
	c := fs.canary
	if c == nil || fs.bakeoff == nil {
		return nil
	}
	chal := fs.decodedLocked(c.Version)
	inc := fs.decodedLocked(fs.stable)
	if chal == nil || inc == nil {
		return nil
	}
	fed := false
	for _, s := range samples {
		delta, ok := pairedDelta(inc, chal, s)
		if !ok {
			continue
		}
		fed = true
		if v := fs.bakeoff.Observe(delta); v != ensemble.Undecided {
			switch v {
			case ensemble.Promote:
				r.metrics.bakeoffPromotes.Add(1)
			case ensemble.Reject:
				r.metrics.bakeoffRejects.Add(1)
			case ensemble.Timeout:
				r.metrics.bakeoffTimeouts.Add(1)
			}
			return r.endCanaryLocked(ctx, tenant, fs, c.Version, v == ensemble.Promote)
		}
	}
	if !fed {
		return nil
	}
	snap := fs.bakeoff.Snapshot()
	return r.journalAppend(journalRecord{Op: opCanaryProgress, Tenant: tenant, Function: fs.spec.Name,
		Version: c.Version, Calls: c.Calls, Failures: c.Failures,
		Reporters: fs.canaryReporters, Bakeoff: &snap, Trace: trace.From(ctx)})
}

// endCanaryLocked settles the live canary episode with a verdict — shared
// by the fleet failure-rate gate (ReportCanary) and the sequential bakeoff
// stopper. WAL-first: the decision record is durable before
// deployment.json changes. Registry mu must be held.
func (r *Registry) endCanaryLocked(ctx context.Context, tenant string, fs *funcState, version int, promoted bool) error {
	episode := ""
	if fs.canary != nil {
		episode = fs.canary.Trace
	}
	fs.canary = nil
	fs.bakeoff = nil
	fs.decoded = nil
	fs.canaryReporters = nil
	fs.autoTuned = false
	event := "canary.rollback"
	if promoted {
		fs.stable = version
		fs.lastDec = DecisionPromoted
		fs.detector.OnSwap()
		r.metrics.canariesPromoted.Add(1)
		event = "canary.promote"
	} else {
		fs.lastDec = DecisionRolledBack
		fs.detector.OnRollback()
		r.metrics.canariesRolledBack.Add(1)
	}
	// The verdict trace is the request that settled the episode; the episode
	// field links back to the request that started it.
	fs.lastDecTrace = trace.From(ctx)
	r.cfg.Log.Event(ctx, "server", event,
		trace.F("tenant", tenant), trace.F("fn", fs.spec.Name),
		trace.F("version", fmt.Sprint(version)), trace.F("episode", episode))
	if err := r.journalAppend(journalRecord{Op: opCanaryEnd, Tenant: tenant,
		Function: fs.spec.Name, Version: version, Decision: fs.lastDec,
		Trace: trace.From(ctx)}); err != nil {
		return err
	}
	if err := r.journalDriftLocked(ctx, tenant, fs); err != nil {
		return err
	}
	if err := r.persistArtifact(tenant, fs); err != nil {
		return err
	}
	if r.journal != nil && r.journal.sizeBytes() > r.cfg.JournalCompactBytes {
		return r.compactJournalLocked()
	}
	return nil
}
