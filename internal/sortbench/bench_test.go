package sortbench

import (
	"testing"

	"nitro/internal/gpusim"
)

func benchSortVariant(b *testing.B, run func(*Problem, *gpusim.Device) (Result, error), keys []float64, bits int) {
	b.Helper()
	d := gpusim.Fermi()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewProblem(keys, bits)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run(p, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeSort64(b *testing.B) {
	benchSortVariant(b, MergeSort, UniformKeys(1<<17, 1), 64)
}

func BenchmarkLocalitySortAlmostSorted(b *testing.B) {
	benchSortVariant(b, LocalitySort, AlmostSortedKeys(1<<17, 0.22, 64, 2), 64)
}

func BenchmarkRadixSort32(b *testing.B) {
	benchSortVariant(b, RadixSort, UniformKeys(1<<17, 3), 32)
}

func BenchmarkMaxDisplacement(b *testing.B) {
	keys := AlmostSortedKeys(1<<17, 0.22, 64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := NewProblem(keys, 64)
		_ = p.MaxDisplacement()
	}
}

func BenchmarkSortFeatures(b *testing.B) {
	p, _ := NewProblem(UniformKeys(1<<17, 5), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeFeatures(p)
	}
}
