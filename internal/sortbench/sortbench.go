// Package sortbench implements the sorting substrate of the Nitro
// reproduction, standing in for ModernGPU's merge and locality sorts and
// CUB's radix sort: three real sorting algorithms over floating-point keys,
// the paper's three selection features (N, Nbits, NAscSeq), and seeded key
// generators for the uniform-random, reverse-sorted and almost-sorted test
// categories on 32- and 64-bit keys. Each variant sorts for real; its
// simulated GPU cost follows the algorithm's pass structure (radix pays per
// key bit, merge pays log N passes, locality sort pays only for the observed
// disorder), which reproduces the paper's crossovers: radix dominates 32-bit
// keys, merge/locality overtake it on 64-bit keys, and locality sort wins on
// almost-sorted inputs.
package sortbench

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"nitro/internal/gpusim"
)

// Tile is the block-sort tile size of the merge-based variants (ModernGPU
// sorts tiles in shared memory before the global merge passes).
const Tile = 1024

// Problem is one sorting instance: keys plus their nominal width in bits (32
// or 64 — the paper sorts float and double keys; width drives radix pass
// count and memory traffic).
type Problem struct {
	Keys []float64
	Bits int

	maxDisp  int
	dispDone bool
}

// NewProblem validates and wraps a sorting workload.
func NewProblem(keys []float64, bits int) (*Problem, error) {
	if len(keys) == 0 {
		return nil, errors.New("sortbench: empty input")
	}
	if bits != 32 && bits != 64 {
		return nil, errors.New("sortbench: key width must be 32 or 64 bits")
	}
	return &Problem{Keys: keys, Bits: bits}, nil
}

// KeyBytes returns the storage size of one key.
func (p *Problem) KeyBytes() int { return p.Bits / 8 }

// MaxDisplacement returns the largest distance any key must travel to its
// sorted position (cached; the locality-sort cost model uses it). The stable
// rank assignment uses an LSD radix sort over the order-preserving bit
// transform, so it is O(n) rather than comparison-bound.
func (p *Problem) MaxDisplacement() int {
	if p.dispDone {
		return p.maxDisp
	}
	idx := sortIndicesByKey(p.Keys)
	for rank, orig := range idx {
		if d := rank - int(orig); d > p.maxDisp {
			p.maxDisp = d
		} else if -d > p.maxDisp {
			p.maxDisp = -d
		}
	}
	p.dispDone = true
	return p.maxDisp
}

// sortIndicesByKey returns the original indices in stable key-sorted order.
func sortIndicesByKey(keys []float64) []int32 {
	n := len(keys)
	a := make([]uint64, n)
	ia := make([]int32, n)
	for i, v := range keys {
		a[i] = floatToSortable(v)
		ia[i] = int32(i)
	}
	b := make([]uint64, n)
	ib := make([]int32, n)
	var count [256]int
	for shift := 0; shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, v := range a {
			count[(v>>shift)&0xff]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for j, v := range a {
			d := (v >> shift) & 0xff
			b[count[d]] = v
			ib[count[d]] = ia[j]
			count[d]++
		}
		a, b = b, a
		ia, ib = ib, ia
	}
	return ia
}

// Features holds the paper's three sort selection features.
type Features struct {
	N       float64
	NBits   float64
	NAscSeq float64 // number of ascending subsequences (runs)
}

// Vector returns [N, Nbits, NAscSeq], the Fig. 4 order.
func (f Features) Vector() []float64 { return []float64{f.N, f.NBits, f.NAscSeq} }

// FeatureNames lists the feature order used by Features.Vector.
func FeatureNames() []string { return []string{"N", "Nbits", "NAscSeq"} }

// ComputeFeatures derives the selection features in one pass.
func ComputeFeatures(p *Problem) Features {
	f := Features{N: float64(len(p.Keys)), NBits: float64(p.Bits), NAscSeq: 1}
	for i := 1; i < len(p.Keys); i++ {
		if p.Keys[i] < p.Keys[i-1] {
			f.NAscSeq++
		}
	}
	return f
}

// Result is a variant execution: the sorted keys and the simulated time.
type Result struct {
	Sorted  []float64
	Seconds float64
}

// Variant is one sorting code variant.
type Variant struct {
	Name string
	Run  func(p *Problem, dev *gpusim.Device) (Result, error)
}

// Variants returns the paper's three variants in Fig. 4 order: Merge Sort,
// Locality Sort, Radix Sort.
func Variants() []Variant {
	return []Variant{
		{Name: "Merge", Run: MergeSort},
		{Name: "Locality", Run: LocalitySort},
		{Name: "Radix", Run: RadixSort},
	}
}

// VariantNames returns the names in Variants order.
func VariantNames() []string {
	vs := Variants()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

// mergePassCount returns the number of global merge passes after block sort.
func mergePassCount(n int) int {
	passes := 0
	for width := Tile; width < n; width *= 2 {
		passes++
	}
	return passes
}

// chargeBlockSort accounts the in-shared-memory tile sort.
func chargeBlockSort(k *gpusim.Kernel, n, kb int) {
	k.GlobalRead(float64(n * kb))
	k.GlobalWrite(float64(n * kb))
	k.ComputeSP(float64(n) * 10 * math.Log2(Tile)) // comparisons in shared memory
}

// chargeMergePass accounts one global merge pass over n keys.
func chargeMergePass(k *gpusim.Kernel, n, kb int) {
	k.GlobalRead(float64(n * kb))
	k.GlobalWrite(float64(n * kb))
	k.ComputeSP(float64(8 * n))
}

// mergeRuns performs a bottom-up natural merge over the given run
// boundaries, returning the sorted slice. Buffers alternate between rounds
// to avoid copy-backs.
func mergeRuns(keys []float64, runs [][2]int) []float64 {
	cur := append([]float64(nil), keys...)
	buf := make([]float64, len(keys))
	for len(runs) > 1 {
		next := make([][2]int, 0, (len(runs)+1)/2)
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				r := runs[i]
				copy(buf[r[0]:r[1]], cur[r[0]:r[1]])
				next = append(next, r)
				continue
			}
			a, b := runs[i], runs[i+1]
			lo, mid, hi := a[0], b[0], b[1]
			x, y, out := lo, mid, lo
			for x < mid && y < hi {
				if cur[x] <= cur[y] {
					buf[out] = cur[x]
					x++
				} else {
					buf[out] = cur[y]
					y++
				}
				out++
			}
			copy(buf[out:out+mid-x], cur[x:mid])
			out += mid - x
			copy(buf[out:out+hi-y], cur[y:hi])
			next = append(next, [2]int{lo, hi})
		}
		cur, buf = buf, cur
		runs = next
	}
	return cur
}

// tileRuns returns fixed Tile-sized boundaries with each tile pre-sorted
// (the block-sort stage shared by merge and locality sort).
func tileRuns(keys []float64) ([]float64, [][2]int) {
	cur := append([]float64(nil), keys...)
	var runs [][2]int
	for lo := 0; lo < len(cur); lo += Tile {
		hi := lo + Tile
		if hi > len(cur) {
			hi = len(cur)
		}
		sort.Float64s(cur[lo:hi])
		runs = append(runs, [2]int{lo, hi})
	}
	return cur, runs
}

// MergeSort is the ModernGPU merge sort: block sort then log(N/Tile)
// full-width global merge passes.
func MergeSort(p *Problem, dev *gpusim.Device) (Result, error) {
	n, kb := len(p.Keys), p.KeyBytes()
	run := gpusim.NewRun(dev)
	k := run.Launch("mergesort", minInt(n, dev.MaxResidentThreads()*2))
	chargeBlockSort(k, n, kb)
	for i := 0; i < mergePassCount(n); i++ {
		chargeMergePass(k, n, kb)
		k.Latency(float64(dev.LaunchOverheadNs) / 2) // per-pass kernel boundary
	}
	run.Done(k)

	cur, runs := tileRuns(p.Keys)
	return Result{Sorted: mergeRuns(cur, runs), Seconds: run.Seconds()}, nil
}

// LocalitySort is the ModernGPU locality sort: after block sort, merge
// passes widen only until they cover the maximum key displacement, so
// nearly-sorted inputs finish in one cheap pass. A run-detection prepass
// reads the keys once.
func LocalitySort(p *Problem, dev *gpusim.Device) (Result, error) {
	n, kb := len(p.Keys), p.KeyBytes()
	disp := p.MaxDisplacement()
	passes := 1
	for width := Tile; width < 2*disp && width < n; width *= 2 {
		passes++
	}
	if disp == 0 {
		passes = 1
	}
	run := gpusim.NewRun(dev)
	k := run.Launch("localitysort", minInt(n, dev.MaxResidentThreads()*2))
	k.GlobalRead(float64(n * kb)) // disorder-detection prepass
	chargeBlockSort(k, n, kb)
	for i := 0; i < passes; i++ {
		chargeMergePass(k, n, kb)
		k.Latency(float64(dev.LaunchOverheadNs) / 2)
	}
	run.Done(k)

	cur, runs := tileRuns(p.Keys)
	return Result{Sorted: mergeRuns(cur, runs), Seconds: run.Seconds()}, nil
}

// RadixSort is the CUB LSD radix sort: Bits/8 digit passes, each a
// histogram+scan+scatter round trip over the keys with semi-coalesced
// scatter writes.
func RadixSort(p *Problem, dev *gpusim.Device) (Result, error) {
	n, kb := len(p.Keys), p.KeyBytes()
	passes := p.Bits / 8
	run := gpusim.NewRun(dev)
	k := run.Launch("radixsort", minInt(n, dev.MaxResidentThreads()*2))
	for i := 0; i < passes; i++ {
		k.GlobalRead(float64(n * kb))      // digit histogram read
		k.GlobalRead(float64(n * kb))      // scatter-pass key read
		k.GlobalWrite(float64(n*kb) * 1.6) // semi-coalesced scatter
		k.ComputeSP(float64(6 * n))
		k.Latency(float64(dev.LaunchOverheadNs)) // 3 kernels per digit
	}
	run.Done(k)

	return Result{Sorted: radixSortFloat64(p.Keys), Seconds: run.Seconds()}, nil
}

// radixSortFloat64 sorts by the IEEE-754 order-preserving bit transform with
// 8-bit LSD passes.
func radixSortFloat64(keys []float64) []float64 {
	n := len(keys)
	a := make([]uint64, n)
	for i, v := range keys {
		a[i] = floatToSortable(v)
	}
	b := make([]uint64, n)
	var count [256]int
	for shift := 0; shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, v := range a {
			count[(v>>shift)&0xff]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, v := range a {
			d := (v >> shift) & 0xff
			b[count[d]] = v
			count[d]++
		}
		a, b = b, a
	}
	out := make([]float64, n)
	for i, v := range a {
		out[i] = sortableToFloat(v)
	}
	return out
}

// floatToSortable maps a float64 to a uint64 whose unsigned order matches
// the float order (standard sign-flip transform).
func floatToSortable(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

func sortableToFloat(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// Generators for the paper's three test categories.

// UniformKeys returns n uniform random keys.
func UniformKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// NormalKeys returns n standard-normal keys (the paper's alternate random
// category, which behaved identically to uniform).
func NormalKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// ExponentialKeys returns n standard-exponential keys.
func ExponentialKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64()
	}
	return out
}

// ReverseSortedKeys returns n strictly descending keys.
func ReverseSortedKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 0.0
	for i := n - 1; i >= 0; i-- {
		v += rng.Float64() + 1e-9
		out[i] = v
	}
	return out
}

// AlmostSortedKeys returns a sorted sequence with swapFrac of the keys
// swapped with a partner at most window positions away (the paper's
// almost-sorted category: 20-25% of keys swapped). Local swaps bound the
// displacement, which is precisely what locality sort exploits.
func AlmostSortedKeys(n int, swapFrac float64, window int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.Float64() + 1e-9
		out[i] = v
	}
	if window < 1 {
		window = 1
	}
	swaps := int(float64(n) * swapFrac / 2)
	for s := 0; s < swaps; s++ {
		i := rng.Intn(n)
		j := i + 1 + rng.Intn(window)
		if j >= n {
			j = n - 1
		}
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
