package sortbench

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"nitro/internal/gpusim"
)

func dev() *gpusim.Device { return gpusim.Fermi() }

func isSorted(a []float64) bool { return sort.Float64sAreSorted(a) }

func runAll(t *testing.T, p *Problem) map[string]float64 {
	t.Helper()
	want := append([]float64(nil), p.Keys...)
	sort.Float64s(want)
	out := map[string]float64{}
	for _, v := range Variants() {
		res, err := v.Run(p, dev())
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if len(res.Sorted) != len(want) {
			t.Fatalf("%s: length changed", v.Name)
		}
		for i := range want {
			if res.Sorted[i] != want[i] {
				t.Fatalf("%s: wrong order at %d: %v vs %v", v.Name, i, res.Sorted[i], want[i])
			}
		}
		if res.Seconds <= 0 || math.IsNaN(res.Seconds) {
			t.Fatalf("%s: bad time %v", v.Name, res.Seconds)
		}
		out[v.Name] = res.Seconds
	}
	return out
}

func bestOf(times map[string]float64) string {
	name, b := "", math.Inf(1)
	for k, v := range times {
		if v < b {
			name, b = k, v
		}
	}
	return name
}

func TestProblemValidation(t *testing.T) {
	if _, err := NewProblem(nil, 32); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := NewProblem([]float64{1}, 48); err == nil {
		t.Error("bad width accepted")
	}
	p, _ := NewProblem([]float64{1}, 32)
	if p.KeyBytes() != 4 {
		t.Error("KeyBytes wrong")
	}
}

func TestRadixWins32BitRandom(t *testing.T) {
	p, _ := NewProblem(UniformKeys(1<<20, 1), 32)
	times := runAll(t, p)
	if b := bestOf(times); b != "Radix" {
		t.Errorf("32-bit random best = %s (%v), want Radix", b, times)
	}
}

func TestMergeOrLocalityWins64BitRandom(t *testing.T) {
	p, _ := NewProblem(UniformKeys(1<<20, 2), 64)
	times := runAll(t, p)
	if b := bestOf(times); b == "Radix" {
		t.Errorf("64-bit random best = Radix (%v), want a merge-based sort", times)
	}
}

func TestLocalityWinsAlmostSorted(t *testing.T) {
	for _, bits := range []int{32, 64} {
		p, _ := NewProblem(AlmostSortedKeys(1<<20, 0.22, 64, 3), bits)
		times := runAll(t, p)
		if b := bestOf(times); b != "Locality" {
			t.Errorf("%d-bit almost-sorted best = %s (%v), want Locality", bits, b, times)
		}
	}
}

func TestReverseSorted(t *testing.T) {
	p, _ := NewProblem(ReverseSortedKeys(1<<19, 4), 64)
	times := runAll(t, p)
	// Reverse-sorted keys have maximal displacement: locality sort must not
	// beat plain merge sort (it pays the extra detection pass).
	if times["Locality"] < times["Merge"] {
		t.Errorf("locality (%v) should not beat merge (%v) on reverse-sorted keys",
			times["Locality"], times["Merge"])
	}
}

func TestDisplacementProperties(t *testing.T) {
	sorted, _ := NewProblem([]float64{1, 2, 3, 4}, 64)
	if sorted.MaxDisplacement() != 0 {
		t.Errorf("sorted displacement = %d", sorted.MaxDisplacement())
	}
	rev, _ := NewProblem([]float64{4, 3, 2, 1}, 64)
	if rev.MaxDisplacement() != 3 {
		t.Errorf("reverse displacement = %d, want 3", rev.MaxDisplacement())
	}
	almost, _ := NewProblem(AlmostSortedKeys(10000, 0.25, 16, 5), 64)
	// Overlapping swap chains compound, but displacement stays within a
	// small multiple of the window — far below n.
	if d := almost.MaxDisplacement(); d > 128 {
		t.Errorf("window-16 swaps should keep displacement small, got %d", d)
	}
}

func TestFeatures(t *testing.T) {
	p, _ := NewProblem([]float64{1, 2, 1, 3, 0}, 32)
	f := ComputeFeatures(p)
	if f.N != 5 || f.NBits != 32 {
		t.Errorf("size features wrong: %+v", f)
	}
	if f.NAscSeq != 3 { // runs: [1,2],[1,3],[0]
		t.Errorf("NAscSeq = %v, want 3", f.NAscSeq)
	}
	rev, _ := NewProblem(ReverseSortedKeys(100, 6), 64)
	fr := ComputeFeatures(rev)
	if fr.NAscSeq != 100 {
		t.Errorf("reverse-sorted NAscSeq = %v, want 100", fr.NAscSeq)
	}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Error("Vector/FeatureNames mismatch")
	}
}

func TestFloatSortableTransform(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-300, 0, 1e-300, 1, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if !(floatToSortable(vals[i-1]) < floatToSortable(vals[i])) {
			t.Errorf("transform not order-preserving between %v and %v", vals[i-1], vals[i])
		}
	}
	for _, v := range vals {
		if back := sortableToFloat(floatToSortable(v)); back != v {
			t.Errorf("round trip changed %v to %v", v, back)
		}
	}
}

func TestQuickAllVariantsSortCorrectly(t *testing.T) {
	f := func(seed int64) bool {
		keys := NormalKeys(500+int(seed%500+500)%500, seed)
		for _, bits := range []int{32, 64} {
			p, err := NewProblem(keys, bits)
			if err != nil {
				return false
			}
			for _, v := range Variants() {
				res, err := v.Run(p, dev())
				if err != nil || !isSorted(res.Sorted) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickSortIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		keys := UniformKeys(300, seed)
		p, _ := NewProblem(keys, 64)
		res, err := RadixSort(p, dev())
		if err != nil {
			return false
		}
		want := append([]float64(nil), keys...)
		sort.Float64s(want)
		for i := range want {
			if want[i] != res.Sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func Test64BitCostsMoreThan32Bit(t *testing.T) {
	keys := UniformKeys(1<<18, 7)
	for _, v := range Variants() {
		p32, _ := NewProblem(keys, 32)
		p64, _ := NewProblem(keys, 64)
		r32, _ := v.Run(p32, dev())
		r64, _ := v.Run(p64, dev())
		if r64.Seconds <= r32.Seconds {
			t.Errorf("%s: 64-bit (%v) should cost more than 32-bit (%v)", v.Name, r64.Seconds, r32.Seconds)
		}
	}
}

func TestRadixCostDoublesWithBits(t *testing.T) {
	keys := UniformKeys(1<<18, 8)
	p32, _ := NewProblem(keys, 32)
	p64, _ := NewProblem(keys, 64)
	r32, _ := RadixSort(p32, dev())
	r64, _ := RadixSort(p64, dev())
	ratio := r64.Seconds / r32.Seconds
	if ratio < 2 || ratio > 6 {
		t.Errorf("radix 64/32 ratio = %v, want roughly 2-6 (passes and bytes double)", ratio)
	}
}

func TestGenerators(t *testing.T) {
	if !isSorted(reverse(ReverseSortedKeys(1000, 9))) {
		t.Error("reverse-sorted generator is not descending")
	}
	a := AlmostSortedKeys(1000, 0.2, 8, 10)
	f := ComputeFeatures(&Problem{Keys: a, Bits: 64})
	u := ComputeFeatures(&Problem{Keys: UniformKeys(1000, 10), Bits: 64})
	if f.NAscSeq >= u.NAscSeq {
		t.Errorf("almost-sorted runs (%v) should be fewer than uniform (%v)", f.NAscSeq, u.NAscSeq)
	}
	if len(ExponentialKeys(10, 1)) != 10 || len(NormalKeys(10, 1)) != 10 {
		t.Error("generator lengths wrong")
	}
}

func reverse(a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[len(a)-1-i] = v
	}
	return out
}

func TestSingleKeyAndTinyInputs(t *testing.T) {
	for _, keys := range [][]float64{{3.14}, {2, 1}, {1, 1, 1}} {
		for _, bits := range []int{32, 64} {
			p, err := NewProblem(keys, bits)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range Variants() {
				res, err := v.Run(p, dev())
				if err != nil {
					t.Fatalf("%s on %v: %v", v.Name, keys, err)
				}
				if !isSorted(res.Sorted) {
					t.Fatalf("%s failed on %v", v.Name, keys)
				}
			}
		}
	}
}

func TestDuplicateKeysStable(t *testing.T) {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i % 7)
	}
	p, _ := NewProblem(keys, 64)
	for _, v := range Variants() {
		res, err := v.Run(p, dev())
		if err != nil || !isSorted(res.Sorted) {
			t.Fatalf("%s failed on duplicate-heavy input: %v", v.Name, err)
		}
	}
}
