package autotuner

import (
	"fmt"
	"math"

	"nitro/internal/core"
)

// ReplayVariant builds a live core.CodeVariant whose variants replay the
// pre-measured per-variant costs of a Suite's instances: variant i on
// instance in simply returns in.Times[i], features return the precomputed
// vector entries, and a constraint vetoes variants whose recorded cost is
// +Inf (the suite convention for "could not run"). The result is a faithful
// deployment-time stand-in for the benchmark — install a trained model into
// cx and hammer Call/CallConcurrent to measure the selection engine itself
// (model predict + constraint check + statistics) without re-simulating the
// kernels.
//
// The policy's Name keys the model and statistics in cx, exactly as for a
// real tunable function.
func ReplayVariant(cx *core.Context, s *Suite, policy core.TuningPolicy) (*core.CodeVariant[Instance], error) {
	if s == nil || len(s.VariantNames) == 0 {
		return nil, fmt.Errorf("autotuner: replay needs a suite with variants")
	}
	cv := core.New[Instance](cx, policy)
	for vi, name := range s.VariantNames {
		vi := vi
		cv.AddVariant(name, func(in Instance) float64 { return in.Times[vi] })
		if err := cv.AddConstraint(name, func(in Instance) bool {
			return vi < len(in.Times) && !math.IsInf(in.Times[vi], 1)
		}); err != nil {
			return nil, err
		}
	}
	if s.DefaultVariant >= 0 && s.DefaultVariant < len(s.VariantNames) {
		if err := cv.SetDefault(s.VariantNames[s.DefaultVariant]); err != nil {
			return nil, err
		}
	}
	for fi, name := range s.FeatureNames {
		fi := fi
		cv.AddInputFeature(core.Feature[Instance]{
			Name: name,
			Eval: func(in Instance) float64 { return in.Features[fi] },
			Cost: func(in Instance) float64 {
				if fi < len(in.FeatureCosts) {
					return in.FeatureCosts[fi]
				}
				return 0
			},
		})
	}
	return cv, nil
}

// FeasibleTest returns the suite's test instances on which at least one
// variant is feasible — the inputs a deployment replay can actually serve.
func FeasibleTest(s *Suite) []Instance {
	out := make([]Instance, 0, len(s.Test))
	for _, in := range s.Test {
		if b, _ := in.Best(); b >= 0 {
			out = append(out, in)
		}
	}
	return out
}
