package autotuner

import (
	"context"
	"errors"
	"testing"

	"nitro/internal/core"
)

// obsFromSuite converts suite instances to retrain observations with
// monotonically increasing sequence numbers.
func obsFromSuite(instances []Instance, startSeq int64) []Observation {
	out := make([]Observation, len(instances))
	for i, in := range instances {
		out[i] = Observation{Seq: startSeq + int64(i), Features: in.Features, Times: in.Times}
	}
	return out
}

// swapTimes returns instances whose per-variant timings are rotated by one
// slot: the feature→best-variant mapping changes while the features stay,
// which is exactly a concept drift from the selector's point of view.
func swapTimes(instances []Instance) []Instance {
	out := make([]Instance, len(instances))
	for i, in := range instances {
		rot := make([]float64, len(in.Times))
		for j := range in.Times {
			rot[j] = in.Times[(j+1)%len(in.Times)]
		}
		cp := in
		cp.Times = rot
		out[i] = cp
	}
	return out
}

// retrainFixture builds a live replay CodeVariant over the synthetic suite
// with an installed v1 model, returning the tuner bound to it.
func retrainFixture(t *testing.T) (*Tuner[Instance], *Suite, *core.Context) {
	t.Helper()
	s := syntheticSuite(120, 60, 7)
	model, _, err := Train(s.Train, TrainOptions{Classifier: "svm", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cx := core.NewContext()
	cv, err := ReplayVariant(cx, s, core.DefaultPolicy(s.Name))
	if err != nil {
		t.Fatal(err)
	}
	if err := cx.SetModel(s.Name, model); err != nil {
		t.Fatal(err)
	}
	return &Tuner[Instance]{CV: cv, Opts: TrainOptions{Classifier: "svm", Seed: 1}}, s, cx
}

// TestRetrainFromObservationsAcceptsOnDrift: observations from a drifted
// (time-rotated) distribution must produce a candidate that beats the stale
// incumbent on the temporal holdout and is stamped version 2.
func TestRetrainFromObservationsAcceptsOnDrift(t *testing.T) {
	tuner, s, cx := retrainFixture(t)
	incumbent, _ := cx.Model(s.Name)
	if incumbent.Version() != 1 {
		t.Fatalf("offline model version = %d, want 1", incumbent.Version())
	}
	drifted := swapTimes(s.Train)
	res, err := tuner.RetrainFromObservations(context.Background(),
		obsFromSuite(drifted, 100), incumbent,
		RetrainOptions{TrainOptions: tuner.Opts, HoldoutFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("drifted candidate rejected: %+v", res)
	}
	if res.Model.Version() != 2 {
		t.Fatalf("candidate version = %d, want 2", res.Model.Version())
	}
	if res.Model.Meta.CreatedAt.IsZero() {
		t.Fatal("retrained model should stamp CreatedAt")
	}
	if res.CandidatePerf <= res.IncumbentPerf {
		t.Fatalf("candidate perf %.3f should exceed stale incumbent %.3f",
			res.CandidatePerf, res.IncumbentPerf)
	}
	if res.CandidateMismatch >= res.IncumbentMismatch {
		t.Fatalf("candidate mismatch %.3f should undercut incumbent %.3f",
			res.CandidateMismatch, res.IncumbentMismatch)
	}
	if res.TrainSize+res.HoldoutSize != len(drifted) {
		t.Fatalf("split %d+%d != %d", res.TrainSize, res.HoldoutSize, len(drifted))
	}
	// The candidate must install cleanly through the validated hot-swap path.
	if err := cx.SetModel(s.Name, res.Model); err != nil {
		t.Fatalf("hot-swap of accepted candidate: %v", err)
	}
}

// TestRetrainFromObservationsRejectsWorseCandidate: when the observations
// match the incumbent's training distribution, a candidate trained on a
// small slice cannot beat it by the required margin — the rollback path.
func TestRetrainFromObservationsRejectsWorseCandidate(t *testing.T) {
	tuner, s, cx := retrainFixture(t)
	incumbent, _ := cx.Model(s.Name)
	// Same distribution as the incumbent saw, tiny corpus, and a margin the
	// candidate cannot clear against an incumbent trained on 120 instances.
	res, err := tuner.RetrainFromObservations(context.Background(),
		obsFromSuite(s.Train[:12], 0), incumbent,
		RetrainOptions{TrainOptions: tuner.Opts, HoldoutFraction: 0.5, MinImprovement: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatalf("undistinguished candidate accepted over incumbent: %+v", res)
	}
	if res.Model == nil || res.Model.Version() != 2 {
		t.Fatalf("rejected candidate should still be returned stamped v2, got %+v", res.Model)
	}
}

// TestRetrainFromObservationsIncremental: the BvSB incremental path spends
// oracle queries and still yields an accepted candidate under drift.
func TestRetrainFromObservationsIncremental(t *testing.T) {
	tuner, s, cx := retrainFixture(t)
	incumbent, _ := cx.Model(s.Name)
	drifted := swapTimes(s.Train)
	res, err := tuner.RetrainFromObservations(context.Background(),
		obsFromSuite(drifted, 0), incumbent,
		RetrainOptions{TrainOptions: tuner.Opts, Incremental: true, MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries <= 0 {
		t.Fatalf("incremental retrain spent %d queries, want > 0", res.Queries)
	}
	if !res.Accepted {
		t.Fatalf("incremental drifted candidate rejected: %+v", res)
	}
}

// TestRetrainFromObservationsEdgeCases pins the error paths: nil CV, too few
// observations, cancelled context, and the no-incumbent bootstrap.
func TestRetrainFromObservationsEdgeCases(t *testing.T) {
	tuner, s, _ := retrainFixture(t)

	var nilTuner Tuner[Instance]
	if _, err := nilTuner.RetrainFromObservations(context.Background(), nil, nil, RetrainOptions{}); err == nil {
		t.Fatal("nil CV should error")
	}
	if _, err := tuner.RetrainFromObservations(context.Background(),
		obsFromSuite(s.Train[:1], 0), nil, RetrainOptions{}); !errors.Is(err, errNoObservations) {
		t.Fatalf("1 observation: err = %v, want errNoObservations", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tuner.RetrainFromObservations(ctx,
		obsFromSuite(s.Train[:20], 0), nil, RetrainOptions{TrainOptions: tuner.Opts}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v", err)
	}
	// No incumbent: any trainable candidate bootstraps (Accepted).
	res, err := tuner.RetrainFromObservations(context.Background(),
		obsFromSuite(s.Train[:20], 0), nil, RetrainOptions{TrainOptions: tuner.Opts})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.Model.Version() != 1 {
		t.Fatalf("bootstrap retrain: accepted=%v version=%d", res.Accepted, res.Model.Version())
	}
}
