package autotuner

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"nitro/internal/core"
)

// liveCV builds the two-variant toy function the live-tuner tests use, with
// optional overrides for the variant bodies.
func liveCV(fns map[string]core.VariantFn[float64]) *core.CodeVariant[float64] {
	cx := core.NewContext()
	cv := core.New[float64](cx, core.DefaultPolicy("toy"))
	low := func(x float64) float64 { return 1 + x }
	high := func(x float64) float64 { return 11 - x }
	if fn, ok := fns["low"]; ok {
		low = fn
	}
	if fn, ok := fns["high"]; ok {
		high = fn
	}
	cv.AddVariant("low", low)
	cv.AddVariant("high", high)
	cv.AddInputFeature(core.Feature[float64]{Name: "x", Eval: func(x float64) float64 { return x }})
	_ = cv.SetDefault("low")
	return cv
}

func tuneInputs() []float64 {
	var inputs []float64
	for x := 0.0; x <= 10; x += 0.5 {
		inputs = append(inputs, x)
	}
	return inputs
}

// TestTuneCtxMatchesTune asserts the context-aware tuning entry point is
// byte-identical to Tune with a background context: same report, same model
// behaviour.
func TestTuneCtxMatchesTune(t *testing.T) {
	inputs := tuneInputs()
	run := func(useCtx bool) (Report, []string) {
		cv := liveCV(nil)
		tuner := &Tuner[float64]{CV: cv, Opts: TrainOptions{Classifier: "svm"}}
		var rep Report
		var err error
		if useCtx {
			rep, err = tuner.TuneCtx(context.Background(), inputs)
		} else {
			rep, err = tuner.Tune(inputs)
		}
		if err != nil {
			t.Fatal(err)
		}
		var picks []string
		for _, x := range inputs {
			_, name, _ := cv.Call(x)
			picks = append(picks, name)
		}
		return rep, picks
	}
	repA, picksA := run(false)
	repB, picksB := run(true)
	if !reflect.DeepEqual(repA, repB) {
		t.Errorf("reports differ:\nTune:    %+v\nTuneCtx: %+v", repA, repB)
	}
	if !reflect.DeepEqual(picksA, picksB) {
		t.Errorf("tuned selections differ: %v vs %v", picksA, picksB)
	}
}

// TestTuneToleratesPanickingVariant asserts the offline tuner records a
// variant that panics on some inputs as infeasible there instead of aborting
// the corpus — and still trains a usable model from the surviving variant.
func TestTuneToleratesPanickingVariant(t *testing.T) {
	cv := liveCV(map[string]core.VariantFn[float64]{
		"high": func(x float64) float64 {
			if x == 7 {
				panic("high variant broken for this input")
			}
			return 11 - x
		},
	})
	tuner := &Tuner[float64]{CV: cv, Opts: TrainOptions{Classifier: "svm"}}
	rep, err := tuner.Tune(tuneInputs())
	if err != nil {
		t.Fatalf("Tune with a panicking variant: %v", err)
	}
	// Every input must have been labelled: the panicking region simply labels
	// as the surviving variant.
	if rep.Skipped != 0 {
		t.Errorf("skipped %d inputs, want 0 (variant 0 is always feasible)", rep.Skipped)
	}
	if rep.LabelCounts[1] == 0 {
		t.Errorf("label counts %v: variant 1 should still win where it works", rep.LabelCounts)
	}
	if _, ok := cv.Context().Model("toy"); !ok {
		t.Fatal("no model installed")
	}
}

// TestTuneToleratesPanickingFeature asserts a feature function that panics on
// an input marks that input infeasible (skipped) rather than killing the run.
func TestTuneToleratesPanickingFeature(t *testing.T) {
	cx := core.NewContext()
	cv := core.New[float64](cx, core.DefaultPolicy("toy"))
	cv.AddVariant("low", func(x float64) float64 { return 1 + x })
	cv.AddVariant("high", func(x float64) float64 { return 11 - x })
	cv.AddInputFeature(core.Feature[float64]{Name: "x", Eval: func(x float64) float64 {
		if x == 3 {
			panic("bad input")
		}
		return x
	}})
	_ = cv.SetDefault("low")
	tuner := &Tuner[float64]{CV: cv, Opts: TrainOptions{Classifier: "svm"}}
	rep, err := tuner.Tune(tuneInputs())
	if err != nil {
		t.Fatalf("Tune with a panicking feature: %v", err)
	}
	if rep.Skipped != 1 {
		t.Errorf("skipped %d inputs, want exactly the one with the broken feature", rep.Skipped)
	}
}

func TestTuneCtxCancelled(t *testing.T) {
	cv := liveCV(nil)
	tuner := &Tuner[float64]{CV: cv, Opts: TrainOptions{Classifier: "svm"}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tuner.TuneCtx(ctx, tuneInputs()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, ok := cv.Context().Model("toy"); ok {
		t.Fatal("cancelled tune must not install a model")
	}
}

// TestReplayVetoedPropagation covers ErrAllVariantsVetoed propagation on the
// concurrent and replay paths (the serial Call path is regression-tested in
// internal/core): an all-infeasible instance must surface the typed error
// through CallConcurrent result slots, not execute a vetoed variant.
func TestReplayVetoedPropagation(t *testing.T) {
	s := syntheticSuite(80, 40, 5)
	model, _, err := Train(s.Train, TrainOptions{Classifier: "svm"})
	if err != nil {
		t.Fatal(err)
	}
	cx := core.NewContext()
	cv, err := ReplayVariant(cx, s, core.DefaultPolicy("replay"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cx.SetModel("replay", model); err != nil {
		t.Fatal(err)
	}
	inf := math.Inf(1)
	dead := Instance{Features: []float64{5, 5}, Times: []float64{inf, inf, inf}}

	// Serial replay path.
	if _, _, err := cv.Call(dead); !errors.Is(err, core.ErrAllVariantsVetoed) {
		t.Fatalf("ReplayVariant serial Call: err = %v, want ErrAllVariantsVetoed", err)
	}

	// Concurrent path: a batch mixing dead and live instances must veto
	// exactly the dead ones.
	feasible := FeasibleTest(s)
	if len(feasible) < 2 {
		t.Fatal("need feasible instances")
	}
	batch := []Instance{dead, feasible[0], dead, feasible[1]}
	results := cv.CallConcurrent(batch, 0)
	for i, r := range results {
		if i%2 == 0 {
			if !errors.Is(r.Err, core.ErrAllVariantsVetoed) {
				t.Errorf("slot %d: err = %v, want ErrAllVariantsVetoed", i, r.Err)
			}
		} else if r.Err != nil {
			t.Errorf("slot %d: unexpected error %v", i, r.Err)
		}
	}
	// Vetoed calls must not be recorded as executions: only the two live
	// batch slots count (the serial dead call and both dead slots veto).
	if st := cx.Stats("replay"); st.Calls != 2 {
		t.Errorf("stats recorded %d calls, want 2", st.Calls)
	}
}
