package autotuner

// Job-queue entry point for the tuning daemon: a bounded worker pool that
// trains models from labelled instance corpora in the background. The
// registry server submits one TuneJob per tune request; the queue bounds
// both concurrency (workers) and backlog (capacity), so a tenant cannot
// wedge the daemon by flooding it with tune requests — Submit fails fast
// with ErrQueueFull and the HTTP layer turns that into 429.
//
// Jobs train with the same offline pipeline as nitro-tune (Train over
// labelled Instances), so a server-side retrain is byte-identical to what
// the CLI would have produced from the same corpus: the model Meta carries
// BaseVersion+1 and a zero CreatedAt, keeping artifacts content-addressable.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nitro/internal/ml"
	"nitro/internal/obs/trace"
)

// JobState is the lifecycle of a queued tuning job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed || s == JobCanceled }

// TuneJob describes one training request.
type TuneJob struct {
	// Function names the tuned function (carried through to the status for
	// observability; the queue itself is function-agnostic).
	Function string
	// Owner names the submitting principal (a tenant, for the registry) for
	// fair-share admission: an owner may hold at most
	// max(1, capacity/activeOwners) non-terminal jobs, so one noisy tenant
	// cannot monopolize the backlog even when the queue has room. Empty
	// opts out of fair-share accounting.
	Owner string
	// Instances is the labelled corpus (features + per-variant times).
	Instances []Instance
	// Options configures the classifier pipeline, exactly as offline tuning.
	Options TrainOptions
	// BaseVersion is the incumbent model generation; the candidate is
	// stamped BaseVersion+1.
	BaseVersion int
	// Ctx carries the submitting request's provenance — its trace id is
	// stamped onto the job status and every lifecycle log event, so the
	// span tree connects the tune request to the canary it stages. A nil
	// Ctx means "no trace".
	Ctx context.Context
	// Done, when non-nil, is invoked from the worker goroutine after the
	// job reaches a terminal state (with the final status).
	Done func(JobStatus)
}

// JobStatus is a point-in-time snapshot of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	Function string   `json:"function"`
	Owner    string   `json:"owner,omitempty"`
	State    JobState `json:"state"`
	// Error holds the failure message when State == JobFailed.
	Error string `json:"error,omitempty"`
	// Trace is the correlation id of the submitting request ("" when the
	// job was submitted without one).
	Trace string `json:"trace,omitempty"`
	// Version is the candidate's stamped generation when State == JobDone.
	Version int `json:"version,omitempty"`
	// TrainAccuracy is the training-set accuracy of the finished candidate.
	TrainAccuracy float64 `json:"train_accuracy,omitempty"`
	// Model is the trained candidate (nil until JobDone). Not serialized;
	// the server distributes it as a versioned artifact instead.
	Model *ml.Model `json:"-"`
}

var (
	// ErrQueueFull is returned by Submit when the backlog is at capacity.
	ErrQueueFull = errors.New("autotuner: tune job queue is full")
	// ErrQueueClosed is returned by Submit after Close.
	ErrQueueClosed = errors.New("autotuner: tune job queue is closed")
	// ErrOwnerThrottled is returned by Submit when the owner already holds
	// its fair share of the queue.
	ErrOwnerThrottled = errors.New("autotuner: owner at fair-share job limit")
	// ErrNotCancelable is returned by Cancel for a job that already started
	// running (or finished) — only queued jobs can be withdrawn.
	ErrNotCancelable = errors.New("autotuner: job is not cancelable")
)

// JobQueue runs tuning jobs on a fixed worker pool with a bounded backlog.
type JobQueue struct {
	mu       sync.Mutex
	jobs     map[string]*JobStatus
	order    []string
	ch       chan string
	closed   bool
	next     int64
	capacity int
	wg       sync.WaitGroup
	log      *trace.Log // nil-safe; lifecycle events only

	pending map[string]TuneJob
}

// NewJobQueue starts a queue with the given worker count (min 1) and
// backlog capacity (min 1).
func NewJobQueue(workers, capacity int) *JobQueue {
	return NewJobQueueObs(workers, capacity, nil)
}

// NewJobQueueObs is NewJobQueue with a structured event log: job
// start/done/failed/canceled transitions are emitted with the submitting
// request's trace id. A nil log disables the events.
func NewJobQueueObs(workers, capacity int, log *trace.Log) *JobQueue {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	q := &JobQueue{
		jobs:     make(map[string]*JobStatus),
		pending:  make(map[string]TuneJob),
		ch:       make(chan string, capacity),
		capacity: capacity,
		log:      log,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// fairShareLocked computes the submitting owner's admission verdict: with
// k owners currently holding non-terminal jobs (the submitter included),
// each may hold max(1, capacity/k). The share shrinks as contention grows,
// so a tenant that filled an idle queue gets throttled as soon as a second
// tenant shows up and the first's backlog drains.
func (q *JobQueue) fairShareLocked(owner string) error {
	if owner == "" {
		return nil
	}
	owners := map[string]bool{owner: true}
	held := 0
	for _, st := range q.jobs {
		if st.State.Terminal() || st.Owner == "" {
			continue
		}
		owners[st.Owner] = true
		if st.Owner == owner {
			held++
		}
	}
	share := q.capacity / len(owners)
	if share < 1 {
		share = 1
	}
	if held >= share {
		return fmt.Errorf("%w: %q holds %d of %d", ErrOwnerThrottled, owner, held, share)
	}
	return nil
}

// Submit enqueues a job and returns its id, or ErrQueueFull /
// ErrQueueClosed / ErrOwnerThrottled.
func (q *JobQueue) Submit(job TuneJob) (string, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", ErrQueueClosed
	}
	if err := q.fairShareLocked(job.Owner); err != nil {
		q.mu.Unlock()
		return "", err
	}
	q.next++
	id := fmt.Sprintf("job-%d", q.next)
	select {
	case q.ch <- id:
	default:
		q.next--
		q.mu.Unlock()
		return "", ErrQueueFull
	}
	q.jobs[id] = &JobStatus{ID: id, Function: job.Function, Owner: job.Owner,
		State: JobQueued, Trace: trace.From(job.Ctx)}
	q.order = append(q.order, id)
	q.pending[id] = job
	q.mu.Unlock()
	q.log.Event(job.Ctx, "autotuner", "job.queued",
		trace.F("job", id), trace.F("fn", job.Function), trace.F("owner", job.Owner))
	return id, nil
}

// Cancel withdraws a queued job: its state becomes JobCanceled and its
// Done callback (when set) fires with the terminal status, exactly as a
// worker would have. A job that a worker already picked up (or that
// finished) returns ErrNotCancelable; an unknown id returns an error.
func (q *JobQueue) Cancel(id string) error {
	q.mu.Lock()
	st, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return fmt.Errorf("autotuner: unknown job %q", id)
	}
	job, queued := q.pending[id]
	if !queued {
		q.mu.Unlock()
		return fmt.Errorf("%w: %q is %s", ErrNotCancelable, id, st.State)
	}
	delete(q.pending, id)
	st.State = JobCanceled
	final := *st
	q.mu.Unlock()
	// Same ordering contract as the worker: the terminal state is visible
	// through Status before Done observes it.
	q.log.Event(job.Ctx, "autotuner", "job.canceled",
		trace.F("job", id), trace.F("fn", job.Function))
	if job.Done != nil {
		job.Done(final)
	}
	return nil
}

// Status returns a snapshot of the job, or false for an unknown id.
func (q *JobQueue) Status(id string) (JobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	st, ok := q.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return *st, true
}

// Pending counts jobs that have not reached a terminal state.
func (q *JobQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, st := range q.jobs {
		if !st.State.Terminal() {
			n++
		}
	}
	return n
}

// Statuses snapshots every job in submission order.
func (q *JobQueue) Statuses() []JobStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobStatus, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Close stops accepting submissions, drains queued jobs, and waits for the
// workers to finish.
func (q *JobQueue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.ch)
	q.mu.Unlock()
	q.wg.Wait()
}

func (q *JobQueue) worker() {
	defer q.wg.Done()
	for id := range q.ch {
		q.mu.Lock()
		job, ok := q.pending[id]
		if !ok {
			q.mu.Unlock()
			continue
		}
		delete(q.pending, id)
		q.jobs[id].State = JobRunning
		q.mu.Unlock()

		q.log.Event(job.Ctx, "autotuner", "job.start",
			trace.F("job", id), trace.F("fn", job.Function))
		st := q.run(id, job)
		switch st.State {
		case JobDone:
			q.log.Event(job.Ctx, "autotuner", "job.done", trace.F("job", id),
				trace.F("fn", job.Function), trace.F("version", fmt.Sprint(st.Version)))
		case JobFailed:
			q.log.Error(job.Ctx, "autotuner", "job.failed", trace.F("job", id),
				trace.F("fn", job.Function), trace.F("error", st.Error))
		}

		q.mu.Lock()
		*q.jobs[id] = st
		q.mu.Unlock()
		if job.Done != nil {
			job.Done(st)
		}
	}
}

func (q *JobQueue) run(id string, job TuneJob) JobStatus {
	st := JobStatus{ID: id, Function: job.Function, Owner: job.Owner, Trace: trace.From(job.Ctx)}
	model, report, err := Train(job.Instances, job.Options)
	if err != nil {
		st.State = JobFailed
		st.Error = err.Error()
		return st
	}
	// Re-stamp the generation over the incumbent's; CreatedAt stays zero so
	// identical corpora yield byte-identical artifacts.
	model.Meta = &ml.ModelMeta{Version: job.BaseVersion + 1, TrainedOn: len(job.Instances) - report.Skipped}
	st.State = JobDone
	st.Version = model.Version()
	st.TrainAccuracy = report.TrainAccuracy
	st.Model = model
	return st
}
