package autotuner

import (
	"errors"
	"math"

	"nitro/internal/ml"
)

// IncrementalOptions configures incremental tuning (the paper's itune mode).
type IncrementalOptions struct {
	TrainOptions
	// Strategy selects pool points; defaults to Best-vs-Second-Best.
	Strategy ml.QueryStrategy
	// MaxIterations caps oracle labellings (itune(iter=N)).
	MaxIterations int
	// TargetAccuracy, when positive together with a validation set, stops
	// as soon as the model reaches it (itune(acc=T)).
	TargetAccuracy float64
}

// IncrementalResult reports an incremental-tuning run.
type IncrementalResult struct {
	Model *ml.Model
	// Queries is the number of exhaustive-search labellings spent (seed
	// labellings excluded).
	Queries int
	// SeedSize is the number of pre-labelled seed instances.
	SeedSize int
	// PerfCurve, when a test suite was supplied, holds the mean performance
	// (Evaluate.MeanPerf) after the seed model and after every iteration.
	PerfCurve []float64
	// Distilled reports whether a compiled dispatch artifact passed its
	// gates and was installed on the final model (TrainOptions.Distill);
	// DistillNote carries the distiller's summary or rejection reason.
	Distilled   bool
	DistillNote string
}

// seedAndPool splits the training instances into a seed set with at least
// one instance of every observed label (the paper requires the seed to cover
// the label set) and an unlabelled active pool.
//
// Infeasible instances (no variant could handle them, best < 0) go into the
// pool, not the bin: per the paper's fallback convention they carry the
// default-variant label when the oracle is asked (see IncrementalTune's
// oracle closure), so the active learner can still spend a query on them and
// learn that such inputs belong to the default. Dropping them — the old
// behaviour — silently shrank the active pool and made the oracle's
// infeasible branch dead code. They are kept out of the seed because their
// label is a convention, not an observation.
func seedAndPool(instances []Instance) (seed []Instance, pool []Instance) {
	seen := map[int]bool{}
	for _, in := range instances {
		best, _ := in.Best()
		if best < 0 {
			pool = append(pool, in)
			continue
		}
		if !seen[best] {
			seen[best] = true
			seed = append(seed, in)
		} else {
			pool = append(pool, in)
		}
	}
	return seed, pool
}

// IncrementalTune runs the active-learning loop over a suite's training
// instances. Feature vectors for the whole pool are assumed cheap (the
// paper's key observation); exhaustive-search labels are only "paid" for the
// seed plus the queried points. When suiteForCurve is non-nil the returned
// PerfCurve tracks test-set performance after each iteration (Fig. 7).
func IncrementalTune(s *Suite, opts IncrementalOptions, suiteForCurve *Suite) (IncrementalResult, error) {
	res := IncrementalResult{}
	seed, pool := seedAndPool(s.Train)
	if len(seed) == 0 {
		return res, errors.New("autotuner: no feasible seed instances")
	}
	res.SeedSize = len(seed)

	// Fit the scaler on every pool feature vector — features are computed
	// for all inputs up front; only labels are expensive.
	scaler := &ml.Scaler{}
	var allX [][]float64
	for _, in := range s.Train {
		allX = append(allX, in.Features)
	}
	if err := scaler.Fit(allX); err != nil {
		return res, err
	}

	seedX := make([][]float64, len(seed))
	seedY := make([]int, len(seed))
	for i, in := range seed {
		seedX[i] = scaler.Transform(in.Features)
		seedY[i], _ = in.Best()
	}
	poolX := make([][]float64, len(pool))
	for i, in := range pool {
		poolX[i] = scaler.Transform(in.Features)
	}
	oracle := func(i int) int {
		best, _ := pool[i].Best()
		if best < 0 {
			// Infeasible input: exhaustive search found no variant that can
			// handle it, so it is labelled with the deployment-time fallback
			// — the default variant — per the paper's convention. Reachable
			// because seedAndPool routes infeasible instances into the pool.
			best = s.DefaultVariant
		}
		return best
	}
	al, err := ml.NewActiveLearner(seedX, seedY, poolX, oracle)
	if err != nil {
		return res, err
	}
	if opts.Strategy != nil {
		al.Strategy = opts.Strategy
	}
	factory, err := makeClassifier(opts.TrainOptions)
	if err != nil {
		return res, err
	}
	al.Factory = factory
	if err := al.Refit(); err != nil {
		return res, err
	}

	record := func() {
		if suiteForCurve == nil {
			return
		}
		m := &ml.Model{Classifier: al.Classifier(), Scaler: scaler}
		rep := Evaluate(m, suiteForCurve, suiteForCurve.Test)
		res.PerfCurve = append(res.PerfCurve, rep.MeanPerf)
	}
	record()

	maxIters := opts.MaxIterations
	if maxIters <= 0 {
		maxIters = len(pool)
	}
	var validDS *ml.Dataset
	if opts.TargetAccuracy > 0 && suiteForCurve != nil {
		validDS = &ml.Dataset{}
		for _, in := range suiteForCurve.Test {
			best, _ := in.Best()
			if best >= 0 {
				validDS.Append(scaler.Transform(in.Features), best)
			}
		}
	}
	for i := 0; i < maxIters; i++ {
		if validDS != nil && ml.Accuracy(al.Classifier(), validDS) >= opts.TargetAccuracy {
			break
		}
		ok, err := al.Step()
		if err != nil {
			return res, err
		}
		if !ok {
			break
		}
		record()
	}
	res.Queries = al.Queries()
	res.Model = &ml.Model{Classifier: al.Classifier(), Scaler: scaler,
		Meta: &ml.ModelMeta{Version: 1, TrainedOn: len(seed) + al.Queries()}}
	if opts.Distill {
		// Distill over the full raw training corpus — features were computed
		// for every pool instance up front, so the compiled artifact is
		// calibrated against the same input distribution the exact model
		// will serve, not just the queried subset.
		stop := opts.Phases.Start("distill")
		res.Distilled, res.DistillNote = distillModel(res.Model, allX, opts.DistillOpts)
		stop()
	}
	return res, nil
}

// FullTrainPerf trains on the complete suite and returns the test-set mean
// performance — the Fig. 7 reference line incremental tuning is compared
// against.
func FullTrainPerf(s *Suite, opts TrainOptions) (float64, *ml.Model, error) {
	model, _, err := Train(s.Train, opts)
	if err != nil {
		return 0, nil, err
	}
	rep := Evaluate(model, s, s.Test)
	return rep.MeanPerf, model, nil
}

// OracleMeanTime returns the average exhaustive-search cost over evaluable
// test instances, for reporting absolute scales.
func OracleMeanTime(test []Instance) float64 {
	var sum float64
	n := 0
	for _, in := range test {
		if _, t := in.Best(); !math.IsInf(t, 1) {
			sum += t
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CrossValidateSuite estimates generalization with k-fold cross-validation
// over the suite's training instances, scored by selection performance (mean
// best/chosen ratio) rather than bare label accuracy — a wrong pick that is
// nearly as fast as the oracle should not count like a disaster.
func CrossValidateSuite(s *Suite, opts TrainOptions, k int) (float64, error) {
	feasible := make([]Instance, 0, len(s.Train))
	for _, in := range s.Train {
		if b, _ := in.Best(); b >= 0 {
			feasible = append(feasible, in)
		}
	}
	if len(feasible) < 2 {
		return 0, errors.New("autotuner: not enough feasible instances for cross-validation")
	}
	trains, tests, err := ml.KFold(len(feasible), k, opts.Seed+7)
	if err != nil {
		return 0, err
	}
	var sum float64
	folds := 0
	for f := range trains {
		var trainSet, testSet []Instance
		for _, i := range trains[f] {
			trainSet = append(trainSet, feasible[i])
		}
		for _, i := range tests[f] {
			testSet = append(testSet, feasible[i])
		}
		model, _, err := Train(trainSet, opts)
		if err != nil {
			return 0, err
		}
		sum += Evaluate(model, s, testSet).MeanPerf
		folds++
	}
	return sum / float64(folds), nil
}
