package autotuner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nitro/internal/core"
	"nitro/internal/ml"
)

// syntheticSuite builds a 3-variant suite where the best variant is a
// deterministic function of a 2-D feature vector, with some instances
// marking variant 2 infeasible and a few instances fully infeasible.
func syntheticSuite(nTrain, nTest int, seed int64) *Suite {
	rng := rand.New(rand.NewSource(seed))
	gen := func(n int, allInfeasibleEvery int) []Instance {
		out := make([]Instance, 0, n)
		for i := 0; i < n; i++ {
			x := rng.Float64() * 10
			y := rng.Float64() * 10
			// Cost surfaces: variant 0 wins for x<4, variant 1 for x>=4 &
			// y<5, variant 2 for x>=4 & y>=5.
			t0 := 1 + x
			t1 := 5 - 0.3*x + 0.5*y
			t2 := 8 - 0.4*x - 0.5*y
			times := []float64{t0, t1, t2}
			if x < 2 { // constraint vetoes variant 2 in this region
				times[2] = math.Inf(1)
			}
			if allInfeasibleEvery > 0 && i%allInfeasibleEvery == allInfeasibleEvery-1 {
				times = []float64{math.Inf(1), math.Inf(1), math.Inf(1)}
			}
			out = append(out, Instance{Features: []float64{x, y}, Times: times})
		}
		return out
	}
	return &Suite{
		Name:           "synthetic",
		VariantNames:   []string{"v0", "v1", "v2"},
		FeatureNames:   []string{"x", "y"},
		DefaultVariant: 0,
		Train:          gen(nTrain, 0),
		Test:           gen(nTest, 25),
	}
}

func TestInstanceBest(t *testing.T) {
	in := Instance{Times: []float64{3, 1, 2}}
	if b, v := in.Best(); b != 1 || v != 1 {
		t.Errorf("Best = %d/%v", b, v)
	}
	inf := Instance{Times: []float64{math.Inf(1), math.Inf(1)}}
	if b, _ := inf.Best(); b != -1 {
		t.Errorf("all-infeasible Best = %d", b)
	}
}

func TestTrainAndEvaluate(t *testing.T) {
	s := syntheticSuite(80, 120, 1)
	model, rep, err := Train(s.Train, TrainOptions{Classifier: "svm", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainAccuracy < 0.8 {
		t.Errorf("train accuracy %v", rep.TrainAccuracy)
	}
	if len(rep.LabelCounts) < 2 {
		t.Errorf("labels collapsed: %v", rep.LabelCounts)
	}
	eval := Evaluate(model, s, s.Test)
	if eval.MeanPerf < 0.85 {
		t.Errorf("mean performance %v, want >= 0.85", eval.MeanPerf)
	}
	if eval.SkippedAllInfeasible == 0 {
		t.Error("test generator should have produced all-infeasible instances")
	}
	if eval.Evaluated+eval.SkippedAllInfeasible != len(s.Test) {
		t.Error("accounting mismatch")
	}
	if eval.FractionAbove(0.0) != 1 {
		t.Error("FractionAbove(0) must be 1")
	}
	if eval.FractionAbove(1.1) != 0 {
		t.Error("FractionAbove(>1) must be 0")
	}
}

func TestTrainGridSearch(t *testing.T) {
	s := syntheticSuite(60, 40, 2)
	model, rep, err := Train(s.Train, TrainOptions{
		Classifier: "svm", GridSearch: true,
		Grid: ml.GridConfig{CValues: []float64{1, 16}, GammaValues: []float64{0.5, 2}, Folds: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.Evaluated != 4 {
		t.Errorf("grid points evaluated = %d", rep.Grid.Evaluated)
	}
	if Evaluate(model, s, s.Test).MeanPerf < 0.85 {
		t.Error("grid-searched model underperforms")
	}
}

func TestTrainAlternateClassifiers(t *testing.T) {
	s := syntheticSuite(80, 60, 3)
	for _, c := range []string{"knn", "tree", "ensemble"} {
		model, _, err := Train(s.Train, TrainOptions{Classifier: c})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if perf := Evaluate(model, s, s.Test).MeanPerf; perf < 0.8 {
			t.Errorf("%s mean perf %v", c, perf)
		}
	}
	if _, _, err := Train(s.Train, TrainOptions{Classifier: "nope"}); err == nil {
		t.Error("unknown classifier accepted")
	}
}

func TestTrainNoFeasible(t *testing.T) {
	bad := []Instance{{Features: []float64{1}, Times: []float64{math.Inf(1)}}}
	if _, _, err := Train(bad, TrainOptions{}); err == nil {
		t.Error("all-infeasible training set accepted")
	}
}

func TestEvaluateConstraintFallback(t *testing.T) {
	// A deliberately wrong model that always predicts variant 2; on
	// instances where 2 is infeasible the engine must fall back to the
	// default and still report a feasible execution.
	s := syntheticSuite(50, 50, 4)
	ds := &ml.Dataset{}
	for _, in := range s.Train {
		ds.Append(in.Features, 2)
	}
	knn := ml.NewKNN(1)
	if err := knn.Fit(ds); err != nil {
		t.Fatal(err)
	}
	model := &ml.Model{Classifier: knn}
	eval := Evaluate(model, s, s.Test)
	if eval.FeasibleChosen != eval.Evaluated {
		t.Errorf("fallback failed: %d of %d feasible", eval.FeasibleChosen, eval.Evaluated)
	}
	if eval.MeanPerf > 0.95 {
		t.Errorf("always-2 model should be visibly suboptimal, got %v", eval.MeanPerf)
	}
}

func TestVariantPerf(t *testing.T) {
	s := syntheticSuite(10, 200, 5)
	perfs := VariantPerf(s, s.Test)
	if len(perfs) != 3 {
		t.Fatalf("want 3 perfs, got %v", perfs)
	}
	for v, p := range perfs {
		if p <= 0 || p > 1 {
			t.Errorf("variant %d perf %v out of (0,1]", v, p)
		}
	}
	// No single variant should be optimal everywhere in this suite.
	for v, p := range perfs {
		if p > 0.99 {
			t.Errorf("variant %d suspiciously always-best: %v", v, p)
		}
	}
}

func TestIncrementalTuneApproachesFullTraining(t *testing.T) {
	s := syntheticSuite(150, 150, 6)
	fullPerf, _, err := FullTrainPerf(s, TrainOptions{Classifier: "svm"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := IncrementalTune(s, IncrementalOptions{
		TrainOptions:  TrainOptions{Classifier: "svm"},
		MaxIterations: 30,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Queries > 30 {
		t.Errorf("queries = %d", res.Queries)
	}
	final := res.PerfCurve[len(res.PerfCurve)-1]
	if final < 0.9*fullPerf {
		t.Errorf("incremental perf %v too far below full-training perf %v", final, fullPerf)
	}
	if res.SeedSize < 2 {
		t.Errorf("seed should cover labels, size %d", res.SeedSize)
	}
	// Curve should generally improve from seed to final.
	if final+0.02 < res.PerfCurve[0] {
		t.Errorf("active learning made things worse: %v -> %v", res.PerfCurve[0], final)
	}
}

func TestIncrementalTuneAccuracyTarget(t *testing.T) {
	s := syntheticSuite(150, 100, 7)
	res, err := IncrementalTune(s, IncrementalOptions{
		TrainOptions:   TrainOptions{Classifier: "svm"},
		MaxIterations:  100,
		TargetAccuracy: 0.85,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries >= 100 {
		t.Logf("accuracy target not reached early (queries=%d) — acceptable but unusual", res.Queries)
	}
	if res.Model == nil {
		t.Fatal("no model returned")
	}
}

func TestIncrementalRandomStrategy(t *testing.T) {
	s := syntheticSuite(120, 80, 8)
	res, err := IncrementalTune(s, IncrementalOptions{
		TrainOptions:  TrainOptions{Classifier: "svm"},
		MaxIterations: 15,
		Strategy:      ml.RandomStrategy{Rng: rand.New(rand.NewSource(1))},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 15 {
		t.Errorf("random strategy queries = %d", res.Queries)
	}
}

func TestOracleMeanTime(t *testing.T) {
	test := []Instance{
		{Times: []float64{2, 4}},
		{Times: []float64{math.Inf(1), 6}},
		{Times: []float64{math.Inf(1), math.Inf(1)}},
	}
	if got := OracleMeanTime(test); got != 4 {
		t.Errorf("oracle mean = %v, want 4", got)
	}
	if OracleMeanTime(nil) != 0 {
		t.Error("empty oracle mean should be 0")
	}
}

func TestLiveTunerEndToEnd(t *testing.T) {
	cx := core.NewContext()
	cv := core.New[float64](cx, core.DefaultPolicy("toy"))
	cv.AddVariant("low", func(x float64) float64 { return 1 + x })
	cv.AddVariant("high", func(x float64) float64 { return 11 - x })
	cv.AddInputFeature(core.Feature[float64]{Name: "x", Eval: func(x float64) float64 { return x }})
	_ = cv.SetDefault("low")

	var inputs []float64
	for x := 0.0; x <= 10; x += 0.5 {
		inputs = append(inputs, x)
	}
	tuner := &Tuner[float64]{CV: cv, Opts: TrainOptions{Classifier: "svm"}}
	rep, err := tuner.Tune(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainAccuracy < 0.9 {
		t.Errorf("live tuner train accuracy %v", rep.TrainAccuracy)
	}
	_, name, _ := cv.Call(1.0)
	if name != "low" {
		t.Errorf("x=1 selected %q", name)
	}
	_, name, _ = cv.Call(9.0)
	if name != "high" {
		t.Errorf("x=9 selected %q", name)
	}
	bad := &Tuner[float64]{}
	if _, err := bad.Tune(nil); err == nil {
		t.Error("nil CV accepted")
	}
}

// TestTrainParallelismInvariant asserts the grid-searched training pipeline
// is bit-identical at every Parallelism setting: same selected
// hyper-parameters, same CV accuracy, same predictions.
func TestTrainParallelismInvariant(t *testing.T) {
	s := syntheticSuite(60, 40, 6)
	run := func(parallelism int) (*ml.Model, Report) {
		model, rep, err := Train(s.Train, TrainOptions{
			Classifier: "svm", GridSearch: true, Parallelism: parallelism,
			Grid: ml.GridConfig{CValues: []float64{1, 16}, GammaValues: []float64{0.5, 2}, Folds: 3},
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return model, rep
	}
	m1, rep1 := run(1)
	m8, rep8 := run(8)
	if rep1.Grid != rep8.Grid {
		t.Errorf("grid result differs: serial %+v, parallel %+v", rep1.Grid, rep8.Grid)
	}
	if rep1.TrainAccuracy != rep8.TrainAccuracy {
		t.Errorf("train accuracy differs: %v vs %v", rep1.TrainAccuracy, rep8.TrainAccuracy)
	}
	for _, in := range s.Test {
		if m1.Predict(in.Features) != m8.Predict(in.Features) {
			t.Fatal("parallel and serial models disagree on a test instance")
		}
	}
}

// TestTunerParallelLabelling asserts Tuner.Tune's worker-pool exhaustive
// search labels the corpus identically at every Parallelism setting.
func TestTunerParallelLabelling(t *testing.T) {
	var inputs []float64
	for x := 0.0; x <= 10; x += 0.25 {
		inputs = append(inputs, x)
	}
	run := func(parallelism int) (Report, []string) {
		cx := core.NewContext()
		cv := core.New[float64](cx, core.DefaultPolicy("toy"))
		cv.AddVariant("low", func(x float64) float64 { return 1 + x })
		cv.AddVariant("high", func(x float64) float64 { return 11 - x })
		cv.AddInputFeature(core.Feature[float64]{Name: "x", Eval: func(x float64) float64 { return x }})
		_ = cv.SetDefault("low")
		tuner := &Tuner[float64]{CV: cv, Opts: TrainOptions{Classifier: "svm", Parallelism: parallelism}}
		rep, err := tuner.Tune(inputs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		var picks []string
		for _, x := range inputs {
			_, name, _ := cv.Call(x)
			picks = append(picks, name)
		}
		return rep, picks
	}
	rep1, picks1 := run(1)
	rep4, picks4 := run(4)
	if rep1.TrainAccuracy != rep4.TrainAccuracy || rep1.Skipped != rep4.Skipped {
		t.Errorf("reports differ: serial %+v, parallel %+v", rep1, rep4)
	}
	for i := range picks1 {
		if picks1[i] != picks4[i] {
			t.Fatalf("input %d: serial picked %q, parallel picked %q", i, picks1[i], picks4[i])
		}
	}
}

func TestTrainLogisticClassifier(t *testing.T) {
	s := syntheticSuite(80, 60, 9)
	model, _, err := Train(s.Train, TrainOptions{Classifier: "logistic"})
	if err != nil {
		t.Fatal(err)
	}
	if perf := Evaluate(model, s, s.Test).MeanPerf; perf < 0.8 {
		t.Errorf("logistic mean perf %v", perf)
	}
}

// Property-style invariants of Evaluate.
func TestEvaluateInvariants(t *testing.T) {
	s := syntheticSuite(60, 120, 10)
	model, _, err := Train(s.Train, TrainOptions{Classifier: "knn"})
	if err != nil {
		t.Fatal(err)
	}
	eval := Evaluate(model, s, s.Test)
	for i, p := range eval.PerfRatios {
		if p < 0 || p > 1+1e-12 {
			t.Fatalf("perf ratio %d = %v outside [0,1]", i, p)
		}
	}
	if len(eval.Chosen) != len(s.Test) {
		t.Fatalf("Chosen has %d entries, want %d", len(eval.Chosen), len(s.Test))
	}
	if eval.ExactMatches > eval.Evaluated {
		t.Fatal("more exact matches than evaluations")
	}
	if eval.FeasibleChosen > eval.Evaluated {
		t.Fatal("more feasible executions than evaluations")
	}
	if eval.AtRiskInstances > eval.Evaluated {
		t.Fatal("more at-risk than evaluated")
	}
}

func TestCrossValidateSuite(t *testing.T) {
	s := syntheticSuite(100, 10, 11)
	perf, err := CrossValidateSuite(s, TrainOptions{Classifier: "svm"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if perf < 0.8 || perf > 1.0001 {
		t.Errorf("CV selection performance %v implausible", perf)
	}
	empty := &Suite{Train: []Instance{{Features: []float64{1}, Times: []float64{math.Inf(1)}}}}
	if _, err := CrossValidateSuite(empty, TrainOptions{}, 3); err == nil {
		t.Error("infeasible-only suite accepted")
	}
}

// Property: VariantPerf entries always land in [0, 1] regardless of the
// infeasibility pattern.
func TestQuickVariantPerfBounded(t *testing.T) {
	f := func(seed int64) bool {
		s := syntheticSuite(5, 40, seed%1000)
		for _, p := range VariantPerf(s, s.Test) {
			if p < 0 || p > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
