package autotuner

import (
	"math"
	"testing"

	"nitro/internal/core"
)

// TestReplayVariantServesSuite checks the deployment replay bridge: a model
// trained offline on a suite, installed into a context, must drive the live
// selection engine over the suite's test instances — concurrently — choosing
// only feasible variants and recording every call.
func TestReplayVariantServesSuite(t *testing.T) {
	s := syntheticSuite(80, 40, 5)
	model, _, err := Train(s.Train, TrainOptions{Classifier: "svm"})
	if err != nil {
		t.Fatal(err)
	}

	cx := core.NewContext()
	cx.SetModel("replay", model)
	cv, err := ReplayVariant(cx, s, core.DefaultPolicy("replay"))
	if err != nil {
		t.Fatal(err)
	}
	if cv.NumVariants() != len(s.VariantNames) {
		t.Fatalf("replay has %d variants, want %d", cv.NumVariants(), len(s.VariantNames))
	}

	feasible := FeasibleTest(s)
	if len(feasible) == 0 || len(feasible) == len(s.Test) {
		t.Fatalf("suite should mix feasible (%d) and infeasible test instances", len(feasible))
	}
	results := cv.CallConcurrent(feasible, 0)
	nameToIdx := map[string]int{}
	for i, n := range s.VariantNames {
		nameToIdx[n] = i
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("instance %d: %v", i, r.Err)
		}
		vi, ok := nameToIdx[r.Variant]
		if !ok {
			t.Fatalf("instance %d: unknown variant %q", i, r.Variant)
		}
		if math.IsInf(feasible[i].Times[vi], 1) {
			t.Errorf("instance %d: replay executed infeasible variant %q", i, r.Variant)
		}
		if r.Value != feasible[i].Times[vi] {
			t.Errorf("instance %d: value %v != recorded cost %v", i, r.Value, feasible[i].Times[vi])
		}
	}
	if st := cx.Stats("replay"); st.Calls != len(feasible) {
		t.Errorf("stats recorded %d calls, want %d", st.Calls, len(feasible))
	}

	// An all-infeasible instance surfaces ErrAllVariantsVetoed instead of
	// silently executing a vetoed default.
	inf := math.Inf(1)
	dead := Instance{Features: []float64{5, 5}, Times: []float64{inf, inf, inf}}
	if _, _, err := cv.Call(dead); err == nil {
		t.Error("replay Call on an all-infeasible instance should error")
	}
}
