package autotuner

import (
	"math"
	"testing"

	"nitro/internal/ml"
)

// TestSeedAndPoolKeepsInfeasibleInPool is the regression test for the
// dropped-instance bug: seedAndPool used to discard all-infeasible training
// instances entirely, silently shrinking the active pool and making the
// oracle's `best < 0 -> default variant` branch dead code. Infeasible
// instances must land in the pool (never the seed).
func TestSeedAndPoolKeepsInfeasibleInPool(t *testing.T) {
	inf := math.Inf(1)
	instances := []Instance{
		{ID: "a", Features: []float64{0}, Times: []float64{1, 2}},        // seed for label 0
		{ID: "b", Features: []float64{1}, Times: []float64{3, 1}},        // seed for label 1
		{ID: "dead", Features: []float64{2}, Times: []float64{inf, inf}}, // infeasible
		{ID: "c", Features: []float64{3}, Times: []float64{1, 5}},        // pool
	}
	seed, pool := seedAndPool(instances)
	if len(seed) != 2 {
		t.Fatalf("seed size = %d, want 2", len(seed))
	}
	for _, in := range seed {
		if b, _ := in.Best(); b < 0 {
			t.Errorf("infeasible instance %q leaked into the seed", in.ID)
		}
	}
	if len(pool) != 2 {
		t.Fatalf("pool size = %d, want 2 (infeasible instance must stay in the pool)", len(pool))
	}
	found := false
	for _, in := range pool {
		if in.ID == "dead" {
			found = true
		}
	}
	if !found {
		t.Error("infeasible instance was dropped from the pool")
	}
}

// TestIncrementalTuneLabelsInfeasibleAsDefault drives the live oracle branch:
// when the active learner queries an infeasible pool point, the oracle labels
// it with the suite's default variant (the paper's deployment fallback) and
// the loop completes without error.
func TestIncrementalTuneLabelsInfeasibleAsDefault(t *testing.T) {
	inf := math.Inf(1)
	s := &Suite{
		Name:           "infeasible",
		VariantNames:   []string{"v0", "v1"},
		FeatureNames:   []string{"x"},
		DefaultVariant: 0,
	}
	// Label boundary at x=5; a cluster of infeasible points at x ~ 20 sits
	// far from everything, so BvSB will visit ambiguous regions but the run
	// exhausts the pool and must label the infeasible points too.
	for x := 0.0; x < 10; x++ {
		times := []float64{1 + x, 11 - x}
		s.Train = append(s.Train, Instance{Features: []float64{x}, Times: times})
		s.Test = append(s.Test, Instance{Features: []float64{x + 0.5}, Times: []float64{1.5 + x, 10.5 - x}})
	}
	for i := 0; i < 3; i++ {
		s.Train = append(s.Train, Instance{
			ID:       "dead",
			Features: []float64{20 + float64(i)},
			Times:    []float64{inf, inf},
		})
	}

	res, err := IncrementalTune(s, IncrementalOptions{
		TrainOptions: TrainOptions{Classifier: "knn"},
		// No iteration cap: drain the pool, forcing oracle queries on the
		// infeasible points.
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantQueries := len(s.Train) - res.SeedSize
	if res.Queries != wantQueries {
		t.Errorf("Queries = %d, want %d (pool including infeasible instances fully drained)", res.Queries, wantQueries)
	}
	if res.Model == nil {
		t.Fatal("no model returned")
	}
	// The infeasible cluster was labelled with the default variant, so the
	// model should predict the default out there.
	if got := res.Model.Predict([]float64{21}); got != s.DefaultVariant {
		t.Errorf("prediction at the infeasible cluster = %d, want default %d", got, s.DefaultVariant)
	}
	var _ ml.Classifier = res.Model.Classifier
}
