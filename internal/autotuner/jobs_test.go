package autotuner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// jobInstances builds a linearly separable 1-D corpus: variant 0 wins below
// the boundary, variant 1 above.
func jobInstances(n int) []Instance {
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		t0, t1 := 1.0, 2.0
		if x > float64(n)/2 {
			t0, t1 = 2.0, 1.0
		}
		out = append(out, Instance{Features: []float64{x}, Times: []float64{t0, t1}})
	}
	return out
}

// TestJobQueueRunsJob: a submitted job trains a model stamped BaseVersion+1
// with zero CreatedAt and reports done.
func TestJobQueueRunsJob(t *testing.T) {
	q := NewJobQueue(2, 4)
	defer q.Close()

	done := make(chan JobStatus, 1)
	id, err := q.Submit(TuneJob{
		Function:    "f",
		Instances:   jobInstances(12),
		BaseVersion: 4,
		Done:        func(st JobStatus) { done <- st },
	})
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	select {
	case st = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish")
	}
	if st.State != JobDone || st.Model == nil || st.Version != 5 {
		t.Fatalf("status = %+v, want done at version 5", st)
	}
	if !st.Model.Meta.CreatedAt.IsZero() {
		t.Fatal("server-trained model has a wall-clock timestamp; artifacts must stay deterministic")
	}
	if got, ok := q.Status(id); !ok || got.State != JobDone {
		t.Fatalf("Status(%s) = %+v, %v", id, got, ok)
	}
	if _, ok := q.Status("job-999"); ok {
		t.Fatal("unknown job id resolved")
	}
}

// TestJobQueueFailure: an untrainable corpus yields JobFailed with an error
// message, not a panic or a silent success.
func TestJobQueueFailure(t *testing.T) {
	q := NewJobQueue(1, 1)
	defer q.Close()
	done := make(chan JobStatus, 1)
	if _, err := q.Submit(TuneJob{Function: "f", Done: func(st JobStatus) { done <- st }}); err != nil {
		t.Fatal(err)
	}
	st := <-done
	if st.State != JobFailed || st.Error == "" || st.Model != nil {
		t.Fatalf("status = %+v, want a failure with a message", st)
	}
}

// TestJobQueueBacklogBound: submissions beyond capacity fail fast with
// ErrQueueFull while a worker is wedged.
func TestJobQueueBacklogBound(t *testing.T) {
	q := NewJobQueue(1, 1)
	defer q.Close()

	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	blocked := make(chan struct{}, 8)
	// Wedge the single worker on the Done callback.
	first := TuneJob{Function: "slow", Instances: jobInstances(8), Done: func(JobStatus) {
		blocked <- struct{}{}
		<-gate
	}}
	if _, err := q.Submit(first); err != nil {
		t.Fatal(err)
	}
	<-blocked
	// One more fits the backlog; the next must be rejected.
	if _, err := q.Submit(TuneJob{Function: "q1", Instances: jobInstances(8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(TuneJob{Function: "q2", Instances: jobInstances(8)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: %v, want ErrQueueFull", err)
	}
	// The wedged job already reached a terminal state; the backlogged one is
	// still pending.
	if p := q.Pending(); p != 1 {
		t.Fatalf("pending = %d, want 1", p)
	}
	once.Do(func() { close(gate) })
}

// TestJobQueueCloseDrains: Close waits for queued work and rejects later
// submissions.
func TestJobQueueCloseDrains(t *testing.T) {
	q := NewJobQueue(2, 8)
	var mu sync.Mutex
	finished := 0
	for i := 0; i < 5; i++ {
		_, err := q.Submit(TuneJob{Function: "f", Instances: jobInstances(10), Done: func(JobStatus) {
			mu.Lock()
			finished++
			mu.Unlock()
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	if finished != 5 {
		t.Fatalf("finished = %d, want 5 after Close", finished)
	}
	if _, err := q.Submit(TuneJob{}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close: %v, want ErrQueueClosed", err)
	}
	if got := q.Statuses(); len(got) != 5 {
		t.Fatalf("statuses = %d entries, want 5", len(got))
	}
}

// TestJobQueueFairShare: with two owners competing, each may hold only its
// capacity/owners share of non-terminal jobs; cancellation frees share.
func TestJobQueueFairShare(t *testing.T) {
	q := NewJobQueue(1, 8)
	defer q.Close()

	// Wedge the single worker on an ownerless job so submissions stay queued
	// (ownerless jobs opt out of fair-share accounting).
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	blocked := make(chan struct{}, 1)
	if _, err := q.Submit(TuneJob{Function: "wedge", Instances: jobInstances(8), Done: func(JobStatus) {
		blocked <- struct{}{}
		<-gate
	}}); err != nil {
		t.Fatal(err)
	}
	<-blocked

	// Sole owner: acme may fill up to the whole capacity.
	var acmeIDs []string
	for i := 0; i < 4; i++ {
		id, err := q.Submit(TuneJob{Function: "f", Owner: "acme", Instances: jobInstances(8)})
		if err != nil {
			t.Fatalf("acme submit %d: %v", i, err)
		}
		acmeIDs = append(acmeIDs, id)
	}

	// A second owner halves the share: globex (holding 0) is admitted, but
	// acme (holding 4 of share 4) is throttled.
	if _, err := q.Submit(TuneJob{Function: "f", Owner: "globex", Instances: jobInstances(8)}); err != nil {
		t.Fatalf("globex submit: %v", err)
	}
	if _, err := q.Submit(TuneJob{Function: "f", Owner: "acme", Instances: jobInstances(8)}); !errors.Is(err, ErrOwnerThrottled) {
		t.Fatalf("over-share submit: %v, want ErrOwnerThrottled", err)
	}

	// Withdrawing one queued job releases share immediately.
	if err := q.Cancel(acmeIDs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(TuneJob{Function: "f", Owner: "acme", Instances: jobInstances(8)}); err != nil {
		t.Fatalf("post-cancel submit: %v", err)
	}
	once.Do(func() { close(gate) })
}

// TestJobQueueCancel: only queued jobs can be withdrawn; the canceled
// terminal state fires Done exactly as a worker would, and the worker later
// skips the tombstone when it drains the channel.
func TestJobQueueCancel(t *testing.T) {
	q := NewJobQueue(1, 8)

	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	blocked := make(chan struct{}, 1)
	wedgeID, err := q.Submit(TuneJob{Function: "wedge", Instances: jobInstances(8), Done: func(JobStatus) {
		blocked <- struct{}{}
		<-gate
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-blocked

	done := make(chan JobStatus, 1)
	id, err := q.Submit(TuneJob{Function: "victim", Owner: "acme", Instances: jobInstances(8), Done: func(st JobStatus) {
		done <- st
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st := <-done
	if st.State != JobCanceled || st.ID != id || st.Owner != "acme" {
		t.Fatalf("canceled status = %+v", st)
	}
	if got, ok := q.Status(id); !ok || got.State != JobCanceled {
		t.Fatalf("Status(%s) = %+v, %v, want canceled", id, got, ok)
	}

	// Already-terminal and unknown ids are rejected.
	if err := q.Cancel(id); !errors.Is(err, ErrNotCancelable) {
		t.Fatalf("double cancel: %v, want ErrNotCancelable", err)
	}
	if err := q.Cancel(wedgeID); !errors.Is(err, ErrNotCancelable) {
		t.Fatalf("cancel of started job: %v, want ErrNotCancelable", err)
	}
	if err := q.Cancel("job-999"); err == nil || errors.Is(err, ErrNotCancelable) {
		t.Fatalf("cancel of unknown job: %v, want a distinct error", err)
	}

	// The worker drains the tombstone without resurrecting it.
	once.Do(func() { close(gate) })
	q.Close()
	if got, _ := q.Status(id); got.State != JobCanceled {
		t.Fatalf("state after drain = %s, want canceled", got.State)
	}
}

// TestJobQueueCancelRace: under concurrent cancellation, every job fires
// Done exactly once, and the terminal state is visible through Status
// before the callback runs — whether a worker or Cancel got there first.
func TestJobQueueCancelRace(t *testing.T) {
	q := NewJobQueue(2, 32)

	const jobs = 16
	var fired atomic.Int64
	var violations atomic.Int64
	ids := make(chan string, jobs)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for i := 0; i < jobs; i++ {
		id, err := q.Submit(TuneJob{Function: "f", Owner: "", Instances: jobInstances(8), Done: func(st JobStatus) {
			defer wg.Done()
			fired.Add(1)
			if got, ok := q.Status(st.ID); !ok || !got.State.Terminal() {
				violations.Add(1)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		ids <- id
	}
	close(ids)

	// Race the workers for every pending entry; losers get ErrNotCancelable.
	var cancelWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		cancelWG.Add(1)
		go func() {
			defer cancelWG.Done()
			for id := range ids {
				if err := q.Cancel(id); err != nil && !errors.Is(err, ErrNotCancelable) {
					t.Errorf("cancel %s: %v", id, err)
				}
			}
		}()
	}
	cancelWG.Wait()
	wg.Wait()
	q.Close()

	if got := fired.Load(); got != jobs {
		t.Fatalf("Done fired %d times, want exactly %d", got, jobs)
	}
	if got := violations.Load(); got != 0 {
		t.Fatalf("%d callbacks observed a non-terminal Status", got)
	}
	for _, st := range q.Statuses() {
		if !st.State.Terminal() {
			t.Fatalf("job %s left in state %s", st.ID, st.State)
		}
	}
}
