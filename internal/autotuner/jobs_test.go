package autotuner

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// jobInstances builds a linearly separable 1-D corpus: variant 0 wins below
// the boundary, variant 1 above.
func jobInstances(n int) []Instance {
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		t0, t1 := 1.0, 2.0
		if x > float64(n)/2 {
			t0, t1 = 2.0, 1.0
		}
		out = append(out, Instance{Features: []float64{x}, Times: []float64{t0, t1}})
	}
	return out
}

// TestJobQueueRunsJob: a submitted job trains a model stamped BaseVersion+1
// with zero CreatedAt and reports done.
func TestJobQueueRunsJob(t *testing.T) {
	q := NewJobQueue(2, 4)
	defer q.Close()

	done := make(chan JobStatus, 1)
	id, err := q.Submit(TuneJob{
		Function:    "f",
		Instances:   jobInstances(12),
		BaseVersion: 4,
		Done:        func(st JobStatus) { done <- st },
	})
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	select {
	case st = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish")
	}
	if st.State != JobDone || st.Model == nil || st.Version != 5 {
		t.Fatalf("status = %+v, want done at version 5", st)
	}
	if !st.Model.Meta.CreatedAt.IsZero() {
		t.Fatal("server-trained model has a wall-clock timestamp; artifacts must stay deterministic")
	}
	if got, ok := q.Status(id); !ok || got.State != JobDone {
		t.Fatalf("Status(%s) = %+v, %v", id, got, ok)
	}
	if _, ok := q.Status("job-999"); ok {
		t.Fatal("unknown job id resolved")
	}
}

// TestJobQueueFailure: an untrainable corpus yields JobFailed with an error
// message, not a panic or a silent success.
func TestJobQueueFailure(t *testing.T) {
	q := NewJobQueue(1, 1)
	defer q.Close()
	done := make(chan JobStatus, 1)
	if _, err := q.Submit(TuneJob{Function: "f", Done: func(st JobStatus) { done <- st }}); err != nil {
		t.Fatal(err)
	}
	st := <-done
	if st.State != JobFailed || st.Error == "" || st.Model != nil {
		t.Fatalf("status = %+v, want a failure with a message", st)
	}
}

// TestJobQueueBacklogBound: submissions beyond capacity fail fast with
// ErrQueueFull while a worker is wedged.
func TestJobQueueBacklogBound(t *testing.T) {
	q := NewJobQueue(1, 1)
	defer q.Close()

	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	blocked := make(chan struct{}, 8)
	// Wedge the single worker on the Done callback.
	first := TuneJob{Function: "slow", Instances: jobInstances(8), Done: func(JobStatus) {
		blocked <- struct{}{}
		<-gate
	}}
	if _, err := q.Submit(first); err != nil {
		t.Fatal(err)
	}
	<-blocked
	// One more fits the backlog; the next must be rejected.
	if _, err := q.Submit(TuneJob{Function: "q1", Instances: jobInstances(8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(TuneJob{Function: "q2", Instances: jobInstances(8)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: %v, want ErrQueueFull", err)
	}
	// The wedged job already reached a terminal state; the backlogged one is
	// still pending.
	if p := q.Pending(); p != 1 {
		t.Fatalf("pending = %d, want 1", p)
	}
	once.Do(func() { close(gate) })
}

// TestJobQueueCloseDrains: Close waits for queued work and rejects later
// submissions.
func TestJobQueueCloseDrains(t *testing.T) {
	q := NewJobQueue(2, 8)
	var mu sync.Mutex
	finished := 0
	for i := 0; i < 5; i++ {
		_, err := q.Submit(TuneJob{Function: "f", Instances: jobInstances(10), Done: func(JobStatus) {
			mu.Lock()
			finished++
			mu.Unlock()
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	if finished != 5 {
		t.Fatalf("finished = %d, want 5 after Close", finished)
	}
	if _, err := q.Submit(TuneJob{}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close: %v, want ErrQueueClosed", err)
	}
	if got := q.Statuses(); len(got) != 5 {
		t.Fatalf("statuses = %d entries, want 5", len(got))
	}
}
