// Package autotuner implements the offline half of Nitro (the paper's
// Python-side Nitro Autotuner): exhaustive-search labelling of training
// inputs, feature scaling, classifier construction with cross-validated grid
// search, incremental tuning via Best-vs-Second-Best active learning, model
// persistence, and the evaluation machinery the paper's experiments report
// (performance of tuned selection relative to exhaustive search).
//
// Two layers are provided. The Suite layer works on precomputed
// (feature-vector, per-variant cost) instances and powers the experiment
// harnesses; the Tuner layer drives a live core.CodeVariant end to end.
package autotuner

import (
	"context"
	"errors"
	"fmt"
	"math"

	"nitro/internal/core"
	"nitro/internal/ml"
	"nitro/internal/obs"
	"nitro/internal/par"
)

// Instance is one tuning input reduced to what the autotuner needs: its
// feature vector and the cost of every variant on it (+Inf marks a variant
// that is vetoed by a constraint or failed, per the paper's convention).
type Instance struct {
	ID       string
	Features []float64
	Times    []float64
	// FeatureCosts optionally holds the modelled evaluation cost (seconds)
	// of each feature on this input, aligned with Features; the Fig. 8
	// overhead analysis consumes it.
	FeatureCosts []float64
}

// Best returns the argmin variant and its cost; (-1, +Inf) when every
// variant is infeasible.
func (in Instance) Best() (int, float64) {
	best, bestV := -1, math.Inf(1)
	for i, t := range in.Times {
		if t < bestV {
			best, bestV = i, t
		}
	}
	return best, bestV
}

// Suite is a complete benchmark corpus: named variants and features plus
// train and test instance sets, with the default variant used for
// constraint fallback at deployment time.
type Suite struct {
	Name           string
	VariantNames   []string
	FeatureNames   []string
	DefaultVariant int
	Train          []Instance
	Test           []Instance
}

// TrainOptions selects and configures the classifier.
type TrainOptions struct {
	// Classifier is "svm" (default), "knn", "tree", "logistic" or
	// "ensemble" (an agreement-weighted committee of all four).
	Classifier string
	// GridSearch enables the paper's cross-validated (C, gamma) search for
	// the SVM; otherwise libSVM-style defaults are used.
	GridSearch bool
	// Grid overrides the default search grid.
	Grid ml.GridConfig
	// Seed drives fold assignment.
	Seed int64
	// Parallelism caps the worker count of the offline pipeline's parallel
	// stages (exhaustive-search labelling in Tuner.Tune, the SVM grid
	// search): 0 uses all cores, 1 forces the serial path. Results are
	// deterministic and identical at every setting; when Parallelism != 1
	// the tuned function's variant, feature and constraint callbacks must be
	// safe for concurrent invocation.
	Parallelism int
	// Phases, when non-nil, accumulates per-phase wall time for the pipeline
	// ("label", "scale", "fit" / "grid-search", "distill", "install"); the
	// nil tracker is a valid no-op, so instrumentation costs nothing when
	// unset.
	Phases *obs.PhaseTracker
	// Distill, when set, distills the fitted model into a compiled dispatch
	// artifact (ml.Distill) over the training corpus. Distillation is
	// best-effort: an artifact that fails the agreement/fallback gates is
	// simply not installed (Report.DistillNote records why) and the exact
	// model ships alone. Off by default, so offline tuning artifacts stay
	// byte-identical to previous releases unless opted in.
	Distill bool
	// DistillOpts configures the distiller; the zero value selects the
	// defaults (depth-8 CART, 99% agreement gate).
	DistillOpts ml.DistillOptions
}

// Report summarizes a training run.
type Report struct {
	Labels        []int
	LabelCounts   map[int]int
	Skipped       int // instances where no variant was feasible
	TrainAccuracy float64
	Grid          ml.GridSearchResult
	// Distilled reports whether a compiled dispatch artifact passed its
	// gates and was installed on the model; DistillNote carries the
	// agreement/fallback summary (or the rejection reason).
	Distilled   bool
	DistillNote string
}

// buildDataset converts labelled instances to an ml.Dataset, skipping
// all-infeasible rows.
func buildDataset(instances []Instance) (*ml.Dataset, []int, int) {
	ds := &ml.Dataset{}
	var labels []int
	skipped := 0
	for _, in := range instances {
		best, _ := in.Best()
		if best < 0 {
			skipped++
			continue
		}
		ds.Append(in.Features, best)
		labels = append(labels, best)
	}
	return ds, labels, skipped
}

func makeClassifier(opts TrainOptions) (func() ml.Classifier, error) {
	switch opts.Classifier {
	case "", "svm":
		return func() ml.Classifier { return ml.DefaultSVM() }, nil
	case "knn":
		return func() ml.Classifier { return ml.NewKNN(5) }, nil
	case "tree":
		return func() ml.Classifier { return ml.NewDecisionTree(8, 1) }, nil
	case "logistic":
		return func() ml.Classifier { return ml.NewLogistic(0, 0, 0) }, nil
	case "ensemble":
		return func() ml.Classifier {
			e := ml.NewEnsemble()
			e.Seed = opts.Seed
			e.Parallelism = opts.Parallelism
			return e
		}, nil
	default:
		return nil, fmt.Errorf("autotuner: unknown classifier %q", opts.Classifier)
	}
}

// Train labels the instances by exhaustive search (already embodied in their
// Times), scales features to [-1, 1], fits the configured classifier and
// returns the deployable model.
func Train(instances []Instance, opts TrainOptions) (*ml.Model, Report, error) {
	rep := Report{LabelCounts: map[int]int{}}
	ds, labels, skipped := buildDataset(instances)
	rep.Labels = labels
	rep.Skipped = skipped
	for _, l := range labels {
		rep.LabelCounts[l]++
	}
	if ds.Len() == 0 {
		return nil, rep, errors.New("autotuner: no feasible training instances")
	}
	stopScale := opts.Phases.Start("scale")
	scaler := &ml.Scaler{}
	scaledX, err := scaler.FitTransform(ds.X)
	stopScale()
	if err != nil {
		return nil, rep, err
	}
	scaled := &ml.Dataset{X: scaledX, Y: ds.Y}

	var clf ml.Classifier
	if (opts.Classifier == "" || opts.Classifier == "svm") && opts.GridSearch {
		grid := opts.Grid
		if grid.Seed == 0 {
			grid.Seed = opts.Seed + 1
		}
		if grid.Parallelism == 0 {
			grid.Parallelism = opts.Parallelism
		}
		stopGrid := opts.Phases.Start("grid-search")
		svm, res, err := ml.GridSearchSVM(scaled, grid)
		stopGrid()
		if err != nil {
			return nil, rep, err
		}
		rep.Grid = res
		clf = svm
	} else {
		factory, err := makeClassifier(opts)
		if err != nil {
			return nil, rep, err
		}
		clf = factory()
		stopFit := opts.Phases.Start("fit")
		err = clf.Fit(scaled)
		stopFit()
		if err != nil {
			return nil, rep, err
		}
	}
	// Stamp provenance: offline tuning is generation 1. CreatedAt stays zero
	// so identical corpora produce byte-identical artifacts (the online
	// retrainer stamps wall-clock time instead).
	model := &ml.Model{Classifier: clf, Scaler: scaler,
		Meta: &ml.ModelMeta{Version: 1, TrainedOn: ds.Len()}}
	rep.TrainAccuracy = ml.Accuracy(clf, scaled)
	if opts.Distill {
		stopDistill := opts.Phases.Start("distill")
		rep.Distilled, rep.DistillNote = distillModel(model, ds.X, opts.DistillOpts)
		stopDistill()
	}
	return model, rep, nil
}

// distillModel distills model over the raw training matrix and installs the
// artifact when it passes its gates. Best-effort by design: a rejected or
// failed distillation leaves the exact model untouched and reports why —
// losing the fast path must never lose the model.
func distillModel(model *ml.Model, rawX [][]float64, opts ml.DistillOptions) (bool, string) {
	c, err := ml.Distill(model, rawX, opts)
	if err != nil {
		return false, err.Error()
	}
	model.Compiled = c
	return true, fmt.Sprintf("compiled dispatch: %d nodes depth %d, agreement %.2f%%, exact fallback %.1f%% (margin %.3g)",
		len(c.Nodes), c.Depth(), 100*c.Agreement, 100*c.FallbackRate, c.Margin)
}

// EvalReport aggregates deployment-time selection quality on a test corpus,
// mirroring the quantities Section V reports.
type EvalReport struct {
	// PerfRatios holds best/chosen per evaluable instance (1 = oracle).
	PerfRatios []float64
	// MeanPerf is the average of PerfRatios — the headline "percentage of
	// exhaustive-search performance".
	MeanPerf float64
	// Chosen holds the executed variant per instance (-1 = skipped).
	Chosen []int
	// ExactMatches counts instances where the model picked the oracle
	// variant.
	ExactMatches int
	// Evaluated counts instances where at least one variant was feasible.
	Evaluated int
	// SkippedAllInfeasible counts instances no variant could handle (the
	// paper's "no variant was able to solve 6 matrices").
	SkippedAllInfeasible int
	// FeasibleChosen counts evaluable instances where the executed variant
	// was feasible (the paper's "selected a converging variant 33/35").
	FeasibleChosen int
	// AtRiskInstances counts evaluable instances where at least one variant
	// was infeasible, i.e. a wrong pick could have failed.
	AtRiskInstances int
}

// FractionAbove returns the share of instances achieving at least the given
// performance ratio (used for the paper's ">=70%"/">=90%" SpMV breakdown).
func (r EvalReport) FractionAbove(threshold float64) float64 {
	if len(r.PerfRatios) == 0 {
		return 0
	}
	n := 0
	for _, p := range r.PerfRatios {
		if p >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(r.PerfRatios))
}

// Evaluate replays deployment-time selection over the test instances: the
// model predicts a variant from the (unscaled) features, infeasible picks
// fall back to the suite's default variant, and the achieved cost is
// compared with the exhaustive-search optimum.
func Evaluate(model *ml.Model, s *Suite, test []Instance) EvalReport {
	rep := EvalReport{}
	for _, in := range test {
		best, bestT := in.Best()
		if best < 0 {
			rep.SkippedAllInfeasible++
			rep.Chosen = append(rep.Chosen, -1)
			continue
		}
		rep.Evaluated++
		atRisk := false
		for _, t := range in.Times {
			if math.IsInf(t, 1) {
				atRisk = true
				break
			}
		}
		if atRisk {
			rep.AtRiskInstances++
		}
		pred := model.Predict(in.Features)
		chosen := pred
		if chosen < 0 || chosen >= len(in.Times) || math.IsInf(in.Times[chosen], 1) {
			chosen = s.DefaultVariant
		}
		rep.Chosen = append(rep.Chosen, chosen)
		chosenT := math.Inf(1)
		if chosen >= 0 && chosen < len(in.Times) {
			chosenT = in.Times[chosen]
		}
		if !math.IsInf(chosenT, 1) {
			rep.FeasibleChosen++
			rep.PerfRatios = append(rep.PerfRatios, bestT/chosenT)
		} else {
			rep.PerfRatios = append(rep.PerfRatios, 0)
		}
		if chosen == best {
			rep.ExactMatches++
		}
	}
	if len(rep.PerfRatios) > 0 {
		var sum float64
		for _, p := range rep.PerfRatios {
			sum += p
		}
		rep.MeanPerf = sum / float64(len(rep.PerfRatios))
	}
	return rep
}

// VariantPerf returns, for each variant, its average performance relative to
// the per-instance best (the paper's Fig. 5 bars): infeasible executions
// score 0 on that instance.
func VariantPerf(s *Suite, test []Instance) []float64 {
	if len(s.VariantNames) == 0 {
		return nil
	}
	sums := make([]float64, len(s.VariantNames))
	n := 0
	for _, in := range test {
		best, bestT := in.Best()
		if best < 0 {
			continue
		}
		n++
		for v, t := range in.Times {
			if !math.IsInf(t, 1) && t > 0 {
				sums[v] += bestT / t
			}
		}
	}
	if n == 0 {
		return sums
	}
	for v := range sums {
		sums[v] /= float64(n)
	}
	return sums
}

// Tuner drives the end-to-end online path: it labels live inputs through a
// core.CodeVariant's exhaustive search, trains, and installs the model into
// the variant's context so subsequent Call invocations select adaptively.
type Tuner[In any] struct {
	CV   *core.CodeVariant[In]
	Opts TrainOptions
}

// Tune runs the full offline pipeline on the given training inputs.
//
// The labelling stage — one feature-vector evaluation plus one exhaustive
// search over every variant per input — is embarrassingly parallel, so it
// fans the inputs out over Opts.Parallelism workers (0 = all cores,
// 1 = serial). Results land in input order, so the trained model is
// independent of scheduling; the variant/feature/constraint callbacks must
// tolerate concurrent invocation unless Parallelism is 1.
//
// Labelling is fault-tolerant: a variant that panics, aborts or times out on
// an input scores +Inf for that input (it is infeasible there, exactly like a
// constraint veto), and a feature function that panics marks the whole input
// infeasible — a single broken variant or pathological input degrades the
// corpus instead of aborting the tuning run. Tune is exactly TuneCtx with a
// background context.
func (t *Tuner[In]) Tune(inputs []In) (Report, error) {
	return t.TuneCtx(context.Background(), inputs)
}

// TuneCtx is Tune with caller-controlled cancellation: once ctx is cancelled
// no further inputs are labelled and TuneCtx returns ctx.Err() without
// training or installing a model. With a background context it is
// byte-identical to Tune.
func (t *Tuner[In]) TuneCtx(ctx context.Context, inputs []In) (Report, error) {
	if t.CV == nil {
		return Report{}, errors.New("autotuner: nil code variant")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	instances := make([]Instance, len(inputs))
	stopLabel := t.Opts.Phases.Start("label")
	cerr := par.ForCtx(ctx, len(inputs), par.Workers(t.Opts.Parallelism), func(i int) {
		instances[i] = t.labelInput(ctx, i, inputs[i])
	})
	stopLabel()
	if cerr != nil {
		return Report{}, cerr
	}
	model, rep, err := Train(instances, t.Opts)
	if err != nil {
		return rep, err
	}
	stopInstall := t.Opts.Phases.Start("install")
	err = t.CV.Context().SetModel(t.CV.Policy().Name, model)
	stopInstall()
	if err != nil {
		return rep, fmt.Errorf("autotuner: install tuned model: %w", err)
	}
	return rep, nil
}

// labelInput labels one training input: feature vector + exhaustive-search
// cost vector. The exhaustive search already isolates variant panics (failed
// variants score +Inf); feature-function panics are recovered here and mark
// the input all-infeasible so buildDataset skips it.
func (t *Tuner[In]) labelInput(ctx context.Context, i int, in In) (inst Instance) {
	inst = Instance{ID: fmt.Sprint(i)}
	nv := t.CV.NumVariants()
	defer func() {
		if r := recover(); r != nil {
			// A feature function panicked: this input cannot be labelled.
			inf := make([]float64, nv)
			for j := range inf {
				inf[j] = math.Inf(1)
			}
			inst.Features = make([]float64, len(t.CV.FeatureNames()))
			inst.Times = inf
		}
	}()
	vec, _ := t.CV.FeatureVector(in)
	times, _ := t.CV.ExhaustiveSearchCtx(ctx, in)
	inst.Features = vec
	inst.Times = times
	return inst
}
