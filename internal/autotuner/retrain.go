package autotuner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"nitro/internal/ml"
)

// Observation is one live deployment observation an adaptation engine
// collected for retraining: a feature vector plus the observed per-variant
// timings (+Inf for variants that were vetoed, quarantined or failed when
// the input was explored — the same convention as Instance.Times).
type Observation struct {
	// Seq orders observations by when they were taken; the retrainer's
	// holdout split reserves the most recent observations for validation.
	Seq int64
	// Features is the unscaled feature vector.
	Features []float64
	// Times holds the observed optimization value of every variant.
	Times []float64
}

// RetrainOptions configures RetrainFromObservations.
type RetrainOptions struct {
	TrainOptions
	// Incremental seeds the paper's BvSB active-learning loop with the
	// observations instead of batch-training on all of them; MaxIterations
	// caps the oracle queries exactly as in incremental tuning.
	Incremental   bool
	MaxIterations int
	// HoldoutFraction is the share of the most recent observations reserved
	// for validating the candidate against the incumbent (default 0.25,
	// clamped to keep at least one training and one holdout observation).
	HoldoutFraction float64
	// MinImprovement is how much the candidate's holdout selection
	// performance must exceed the incumbent's to be accepted; 0 accepts
	// ties (the candidate is trained on fresher data).
	MinImprovement float64
}

// RetrainResult reports one retraining run: the candidate model, the
// holdout verdict, and how the candidate compared with the incumbent.
type RetrainResult struct {
	// Model is the candidate (stamped with the incumbent's version + 1);
	// installed by the caller only when Accepted.
	Model *ml.Model
	// Accepted reports whether the candidate beat (or, with zero
	// MinImprovement, matched) the incumbent on the holdout.
	Accepted bool
	// TrainSize / HoldoutSize are the corpus split sizes.
	TrainSize, HoldoutSize int
	// CandidatePerf / IncumbentPerf are the holdout mean selection
	// performances (best/chosen; 1 = oracle). IncumbentPerf is 0 when no
	// incumbent was installed.
	CandidatePerf, IncumbentPerf float64
	// CandidateMismatch / IncumbentMismatch are the holdout mismatch rates
	// (share of evaluable holdout observations where the model's pick was
	// not the observed best).
	CandidateMismatch, IncumbentMismatch float64
	// Queries counts BvSB oracle labellings when Incremental (0 otherwise).
	Queries int
}

// errNoObservations is returned when the observation corpus cannot support a
// retrain (too few, or no feasible labels).
var errNoObservations = errors.New("autotuner: not enough observations to retrain")

// RetrainFromObservations is the online counterpart of TuneCtx: instead of
// labelling fresh inputs by exhaustive search, it consumes observations an
// adaptation engine already paid for at deployment time (explored live
// inputs with full per-variant timings), fits a candidate model, and
// validates it against the incumbent on a holdout of the most recent
// observations.
//
// The split is temporal: the newest HoldoutFraction of the observations
// (by Seq) validates, the rest trains — a candidate must prove itself on
// data it has not seen and that best reflects the drifted distribution.
// The candidate is stamped incumbent.Version+1 and returned regardless of
// the verdict; the caller hot-swaps it only when Accepted (and otherwise
// rolls back to the incumbent by doing nothing).
//
// ctx cancels the run between pipeline stages; the candidate is NOT
// installed by this function, so cancellation never leaves a half-deployed
// model.
func (t *Tuner[In]) RetrainFromObservations(ctx context.Context, obs []Observation, incumbent *ml.Model, opts RetrainOptions) (RetrainResult, error) {
	res := RetrainResult{}
	if t.CV == nil {
		return res, errors.New("autotuner: nil code variant")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(obs) < 2 {
		return res, fmt.Errorf("%w: have %d, need >= 2", errNoObservations, len(obs))
	}

	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	frac := opts.HoldoutFraction
	if frac <= 0 {
		frac = 0.25
	}
	hold := int(math.Ceil(frac * float64(len(sorted))))
	if hold < 1 {
		hold = 1
	}
	if hold >= len(sorted) {
		hold = len(sorted) - 1
	}
	toInstances := func(in []Observation) []Instance {
		out := make([]Instance, len(in))
		for i, o := range in {
			out[i] = Instance{ID: fmt.Sprintf("obs-%d", o.Seq), Features: o.Features, Times: o.Times}
		}
		return out
	}
	train := toInstances(sorted[:len(sorted)-hold])
	holdout := toInstances(sorted[len(sorted)-hold:])
	res.TrainSize, res.HoldoutSize = len(train), len(holdout)

	suite := &Suite{
		Name:           t.CV.Policy().Name,
		VariantNames:   t.CV.VariantNames(),
		FeatureNames:   t.CV.FeatureNames(),
		DefaultVariant: t.CV.DefaultIndex(),
		Train:          train,
		Test:           holdout,
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	var candidate *ml.Model
	if opts.Incremental {
		inc, err := IncrementalTune(suite, IncrementalOptions{
			TrainOptions:  opts.TrainOptions,
			MaxIterations: opts.MaxIterations,
		}, nil)
		if err != nil {
			return res, fmt.Errorf("autotuner: retrain (incremental): %w", err)
		}
		candidate = inc.Model
		res.Queries = inc.Queries
	} else {
		m, _, err := Train(train, opts.TrainOptions)
		if err != nil {
			return res, fmt.Errorf("autotuner: retrain: %w", err)
		}
		candidate = m
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	// The batch path distills inside Train; the incremental path builds its
	// model through the BvSB loop, so distill here. Either way a candidate
	// that should carry a compiled artifact gets one before validation, and a
	// rejected artifact just ships the exact model (best-effort).
	if opts.Distill && candidate.Compiled == nil {
		rawX := make([][]float64, len(train))
		for i := range train {
			rawX[i] = train[i].Features
		}
		distillModel(candidate, rawX, opts.DistillOpts)
	}

	candidate.Meta = &ml.ModelMeta{
		Version:   incumbent.Version() + 1,
		CreatedAt: time.Now().UTC(),
		TrainedOn: len(train),
	}
	res.Model = candidate

	candEval := Evaluate(candidate, suite, holdout)
	res.CandidatePerf = candEval.MeanPerf
	res.CandidateMismatch = mismatchRate(candEval)
	if incumbent != nil {
		incEval := Evaluate(incumbent, suite, holdout)
		res.IncumbentPerf = incEval.MeanPerf
		res.IncumbentMismatch = mismatchRate(incEval)
		res.Accepted = res.CandidatePerf >= res.IncumbentPerf+opts.MinImprovement
	} else {
		res.Accepted = true
	}
	return res, nil
}

// mismatchRate is the share of evaluable instances where the model did not
// pick the observed-best variant.
func mismatchRate(e EvalReport) float64 {
	if e.Evaluated == 0 {
		return 0
	}
	return 1 - float64(e.ExactMatches)/float64(e.Evaluated)
}
