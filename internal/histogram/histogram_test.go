package histogram

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nitro/internal/gpusim"
)

func dev() *gpusim.Device { return gpusim.Fermi() }

func runAll(t *testing.T, p *Problem) map[string]float64 {
	t.Helper()
	ref := p.Counts()
	var total int64
	for _, c := range ref {
		total += c
	}
	if total != int64(len(p.Data)) {
		t.Fatalf("counts sum to %d, want %d", total, len(p.Data))
	}
	out := map[string]float64{}
	for _, v := range Variants() {
		res, err := v.Run(p, dev())
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		for i := range ref {
			if res.Counts[i] != ref[i] {
				t.Fatalf("%s: count mismatch at bin %d", v.Name, i)
			}
		}
		if res.Seconds <= 0 || math.IsNaN(res.Seconds) {
			t.Fatalf("%s: bad time %v", v.Name, res.Seconds)
		}
		out[v.Name] = res.Seconds
	}
	return out
}

func bestOf(times map[string]float64) string {
	name, b := "", math.Inf(1)
	for k, v := range times {
		if v < b {
			name, b = k, v
		}
	}
	return name
}

func TestProblemValidation(t *testing.T) {
	if _, err := NewProblem(nil, 8); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := NewProblem([]float64{0.5}, 1); err == nil {
		t.Error("single bin accepted")
	}
}

func TestBinOfClamps(t *testing.T) {
	p, _ := NewProblem([]float64{0}, 10)
	if p.BinOf(-0.5) != 0 || p.BinOf(1.5) != 9 || p.BinOf(0.55) != 5 {
		t.Error("BinOf clamping wrong")
	}
}

func TestUniformFavoursSharedAtomics(t *testing.T) {
	p, _ := NewProblem(Uniform(1<<20, 1), 256)
	times := runAll(t, p)
	b := bestOf(times)
	if !strings.HasPrefix(b, "Shared-Atomic") {
		t.Errorf("uniform best = %s (%v), want shared atomics", b, times)
	}
	if times["Shared-Atomic-ES"] >= times["Global-Atomic-ES"] {
		t.Errorf("shared (%v) should beat global (%v) atomics", times["Shared-Atomic-ES"], times["Global-Atomic-ES"])
	}
	if times["Shared-Atomic-ES"] >= times["Sort-ES"] {
		t.Errorf("atomics (%v) should beat sort (%v) on uniform data", times["Shared-Atomic-ES"], times["Sort-ES"])
	}
}

func TestHotSpotFavoursSort(t *testing.T) {
	p, _ := NewProblem(HotSpot(1<<20, 0.9, 2), 256)
	if p.MaxShare() < 0.85 {
		t.Fatalf("hotspot generator too tame: maxShare %v", p.MaxShare())
	}
	times := runAll(t, p)
	b := bestOf(times)
	if !strings.HasPrefix(b, "Sort") {
		t.Errorf("hotspot best = %s (%v), want sort-based", b, times)
	}
	if times["Global-Atomic-ES"] < 5*times["Sort-ES"] {
		t.Errorf("global atomics (%v) should collapse vs sort (%v) on 90%% hot bin",
			times["Global-Atomic-ES"], times["Sort-ES"])
	}
}

func TestPatchyFavoursDynamicMapping(t *testing.T) {
	p, _ := NewProblem(Patchy(1<<20, TileSize, 3), 256)
	times := runAll(t, p)
	if times["Shared-Atomic-Dynamic"] >= times["Shared-Atomic-ES"] {
		t.Errorf("dynamic (%v) should beat even-share (%v) on patchy data",
			times["Shared-Atomic-Dynamic"], times["Shared-Atomic-ES"])
	}
}

func TestUniformESNotWorseThanDynamic(t *testing.T) {
	p, _ := NewProblem(Uniform(1<<20, 4), 256)
	times := runAll(t, p)
	if times["Shared-Atomic-ES"] > times["Shared-Atomic-Dynamic"]*1.05 {
		t.Errorf("ES (%v) should be at least as good as dynamic (%v) on uniform data",
			times["Shared-Atomic-ES"], times["Shared-Atomic-Dynamic"])
	}
}

func TestFewerBinsHurtAtomics(t *testing.T) {
	data := Uniform(1<<20, 5)
	wide, _ := NewProblem(data, 4096)
	narrow, _ := NewProblem(data, 8)
	tw := runAll(t, wide)
	tn := runAll(t, narrow)
	ratioWide := tw["Shared-Atomic-ES"] / tw["Sort-ES"]
	ratioNarrow := tn["Shared-Atomic-ES"] / tn["Sort-ES"]
	if ratioNarrow <= ratioWide {
		t.Errorf("atomics should lose ground with fewer bins: %v vs %v", ratioNarrow, ratioWide)
	}
}

func TestFeatures(t *testing.T) {
	p, _ := NewProblem(Uniform(100000, 6), 64)
	f := ComputeFeatures(p, DefaultSubSample(len(p.Data)))
	if f.N != 100000 || math.Abs(f.NPerBin-100000.0/64) > 1e-9 {
		t.Errorf("size features wrong: %+v", f)
	}
	// Uniform SD ~ 1/sqrt(12) = 0.2887.
	if math.Abs(f.SubSampleSD-0.2887) > 0.03 {
		t.Errorf("uniform SubSampleSD = %v, want ~0.289", f.SubSampleSD)
	}
	hot, _ := NewProblem(HotSpot(100000, 0.95, 7), 64)
	fh := ComputeFeatures(hot, DefaultSubSample(100000))
	if fh.SubSampleSD >= f.SubSampleSD {
		t.Errorf("hotspot SD (%v) should be below uniform SD (%v)", fh.SubSampleSD, f.SubSampleSD)
	}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Error("Vector/FeatureNames mismatch")
	}
}

func TestSubSampleBudget(t *testing.T) {
	if DefaultSubSample(100) != 25 || DefaultSubSample(1<<20) != 10000 || DefaultSubSample(2) != 1 {
		t.Errorf("budgets: %d %d %d", DefaultSubSample(100), DefaultSubSample(1<<20), DefaultSubSample(2))
	}
	p, _ := NewProblem(Uniform(10000, 8), 16)
	full := ComputeFeatures(p, 10000)
	small := ComputeFeatures(p, 100)
	if math.Abs(full.SubSampleSD-small.SubSampleSD) > 0.05 {
		t.Errorf("sub-sampled SD (%v) should approximate full SD (%v)", small.SubSampleSD, full.SubSampleSD)
	}
}

func TestVariantNamesOrder(t *testing.T) {
	want := []string{"Sort-ES", "Sort-Dynamic", "Shared-Atomic-ES", "Shared-Atomic-Dynamic",
		"Global-Atomic-ES", "Global-Atomic-Dynamic"}
	got := VariantNames()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order changed: %v", got)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 256: 8, 257: 9, 4096: 12}
	for bins, want := range cases {
		if got := bitsFor(bins); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", bins, got, want)
		}
	}
}

// Property: counts are a permutation-invariant of the data.
func TestQuickCountsPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		s := seed % 100
		data := Uniform(5000, s)
		p1, _ := NewProblem(data, 32)
		rev := make([]float64, len(data))
		for i, v := range data {
			rev[len(data)-1-i] = v
		}
		p2, _ := NewProblem(rev, 32)
		c1, c2 := p1.Counts(), p2.Counts()
		for i := range c1 {
			if c1[i] != c2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := HotSpot(1000, 0.5, 9), HotSpot(1000, 0.5, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
	g := Gaussian(10000, 3)
	for _, v := range g {
		if v < 0 || v >= 1 {
			t.Fatalf("gaussian out of range: %v", v)
		}
	}
	pa := Patchy(10000, 128, 4)
	if len(pa) != 10000 {
		t.Fatal("patchy length wrong")
	}
}

func TestMoreBinsThanSamples(t *testing.T) {
	p, err := NewProblem(Uniform(64, 11), 4096)
	if err != nil {
		t.Fatal(err)
	}
	times := runAll(t, p)
	if len(times) != 6 {
		t.Fatalf("variants failed on sparse histogram: %v", times)
	}
}

func TestConstantData(t *testing.T) {
	data := make([]float64, 10000)
	for i := range data {
		data[i] = 0.25
	}
	p, _ := NewProblem(data, 64)
	if p.MaxShare() != 1 {
		t.Errorf("constant data max share = %v, want 1", p.MaxShare())
	}
	times := runAll(t, p)
	// Full contention: atomics must collapse relative to sorting.
	if times["Global-Atomic-ES"] < times["Sort-ES"] {
		t.Errorf("global atomics (%v) should lose to sort (%v) on constant data",
			times["Global-Atomic-ES"], times["Sort-ES"])
	}
}
