package histogram

import (
	"testing"

	"nitro/internal/gpusim"
)

func benchHistVariant(b *testing.B, name string, data []float64, bins int) {
	b.Helper()
	p, err := NewProblem(data, bins)
	if err != nil {
		b.Fatal(err)
	}
	p.analyze() // cache stats so the bench isolates the variant path
	var v Variant
	for _, cand := range Variants() {
		if cand.Name == name {
			v = cand
		}
	}
	d := gpusim.Fermi()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Run(p, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistSortES(b *testing.B) {
	benchHistVariant(b, "Sort-ES", Uniform(1<<18, 1), 256)
}

func BenchmarkHistSharedAtomicES(b *testing.B) {
	benchHistVariant(b, "Shared-Atomic-ES", Uniform(1<<18, 2), 256)
}

func BenchmarkHistGlobalAtomicDynamic(b *testing.B) {
	benchHistVariant(b, "Global-Atomic-Dynamic", HotSpot(1<<18, 0.8, 3), 256)
}

func BenchmarkHistAnalyze(b *testing.B) {
	data := Patchy(1<<18, TileSize, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewProblem(data, 256)
		if err != nil {
			b.Fatal(err)
		}
		p.analyze()
	}
}

func BenchmarkHistFeatures(b *testing.B) {
	p, err := NewProblem(Gaussian(1<<18, 5), 256)
	if err != nil {
		b.Fatal(err)
	}
	sub := DefaultSubSample(len(p.Data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeFeatures(p, sub)
	}
}
