// Package histogram implements the histogram substrate of the Nitro
// reproduction, standing in for the CUDA Unbound (CUB) histogram variants:
// three binning strategies (sort-based, shared-memory atomics, global-memory
// atomics) crossed with two grid-mapping strategies (even-share and dynamic
// queueing), the paper's three selection features (N, N/#bins, SubSampleSD),
// and seeded input generators spanning the distribution regimes that flip
// the winner (uniform data favours atomics, skewed data collapses them,
// spatially clustered data punishes even-share mapping).
package histogram

import (
	"errors"
	"math"
	"math/rand"

	"nitro/internal/gpusim"
)

// TileSize is the per-block input tile used by the grid-mapping models.
const TileSize = 4096

// Problem is one histogram instance: sample values in [0, 1) and a bin
// count. Derived statistics (bin counts, per-tile contention profile) are
// cached because every variant needs them.
type Problem struct {
	Data []float64
	Bins int

	counts    []int64
	maxShare  float64
	tileMax   []int // per input tile: occupancy of its hottest bin
	statsDone bool
}

// NewProblem validates and wraps a histogram workload.
func NewProblem(data []float64, bins int) (*Problem, error) {
	if len(data) == 0 {
		return nil, errors.New("histogram: empty input")
	}
	if bins < 2 {
		return nil, errors.New("histogram: need at least 2 bins")
	}
	return &Problem{Data: data, Bins: bins}, nil
}

// BinOf maps a value to its bin.
func (p *Problem) BinOf(v float64) int {
	b := int(v * float64(p.Bins))
	if b < 0 {
		b = 0
	}
	if b >= p.Bins {
		b = p.Bins - 1
	}
	return b
}

func (p *Problem) analyze() {
	if p.statsDone {
		return
	}
	p.counts = make([]int64, p.Bins)
	nTiles := (len(p.Data) + TileSize - 1) / TileSize
	p.tileMax = make([]int, nTiles)
	tileCounts := make([]int32, p.Bins)
	touched := make([]int, 0, TileSize)
	for t := 0; t < nTiles; t++ {
		lo, hi := t*TileSize, (t+1)*TileSize
		if hi > len(p.Data) {
			hi = len(p.Data)
		}
		for _, v := range p.Data[lo:hi] {
			b := p.BinOf(v)
			p.counts[b]++
			if tileCounts[b] == 0 {
				touched = append(touched, b)
			}
			tileCounts[b]++
			if int(tileCounts[b]) > p.tileMax[t] {
				p.tileMax[t] = int(tileCounts[b])
			}
		}
		for _, b := range touched {
			tileCounts[b] = 0
		}
		touched = touched[:0]
	}
	var maxC int64
	for _, c := range p.counts {
		if c > maxC {
			maxC = c
		}
	}
	p.maxShare = float64(maxC) / float64(len(p.Data))
	p.statsDone = true
}

// Counts returns the reference histogram (computed once).
func (p *Problem) Counts() []int64 {
	p.analyze()
	return p.counts
}

// MaxShare returns the fraction of samples landing in the hottest bin — the
// quantity that serializes atomic variants.
func (p *Problem) MaxShare() float64 {
	p.analyze()
	return p.maxShare
}

// tileImbalance returns (max, mean) of the per-tile hottest-bin occupancy,
// the even-share makespan driver.
func (p *Problem) tileImbalance() (maxT, meanT float64) {
	p.analyze()
	if len(p.tileMax) == 0 {
		return 1, 1
	}
	var sum float64
	for _, m := range p.tileMax {
		sum += float64(m)
		if float64(m) > maxT {
			maxT = float64(m)
		}
	}
	return maxT, sum / float64(len(p.tileMax))
}

// Features holds the paper's three histogram selection features.
type Features struct {
	N           float64
	NPerBin     float64
	SubSampleSD float64
}

// Vector returns [N, N/#bins, SubSampleSD], the Fig. 4 order.
func (f Features) Vector() []float64 { return []float64{f.N, f.NPerBin, f.SubSampleSD} }

// FeatureNames lists the feature order used by Features.Vector.
func FeatureNames() []string { return []string{"N", "N/#bins", "SubSampleSD"} }

// DefaultSubSample is the paper's sub-sample budget for the SubSampleSD
// feature: 25% of the input or 10,000 elements, whichever is lower.
func DefaultSubSample(n int) int {
	s := n / 4
	if s > 10000 {
		s = 10000
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ComputeFeatures derives the selection features using a strided sub-sample
// of the given size for the standard-deviation feature (the paper's
// tunable-overhead feature of Fig. 8).
func ComputeFeatures(p *Problem, subSample int) Features {
	n := len(p.Data)
	f := Features{N: float64(n), NPerBin: float64(n) / float64(p.Bins)}
	if subSample < 1 {
		subSample = 1
	}
	if subSample > n {
		subSample = n
	}
	stride := n / subSample
	if stride < 1 {
		stride = 1
	}
	var sum, sumSq float64
	cnt := 0
	for i := 0; i < n; i += stride {
		v := p.Data[i]
		sum += v
		sumSq += v * v
		cnt++
	}
	mean := sum / float64(cnt)
	variance := sumSq/float64(cnt) - mean*mean
	if variance < 0 {
		variance = 0
	}
	f.SubSampleSD = math.Sqrt(variance)
	return f
}

// Generators — all values land in [0, 1).

// Uniform returns n independent uniform samples.
func Uniform(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// Gaussian returns n normal samples (mean 0.5, sd 0.1), clamped to [0, 1).
func Gaussian(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		v := 0.5 + 0.1*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		if v >= 1 {
			v = math.Nextafter(1, 0)
		}
		out[i] = v
	}
	return out
}

// HotSpot returns n samples where fraction hot of the mass sits in one tiny
// value range (one bin) and the rest is uniform — the atomic-collapse regime.
func HotSpot(n int, hot float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < hot {
			out[i] = 0.5
		} else {
			out[i] = rng.Float64()
		}
	}
	return out
}

// Patchy returns n samples alternating between uniform stretches and
// constant-valued patches of patchLen: globally balanced bins but extreme
// per-tile concentration, the regime where dynamic grid mapping beats
// even-share.
func Patchy(n, patchLen int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	i := 0
	for i < n {
		if rng.Float64() < 0.5 {
			v := rng.Float64()
			for j := 0; j < patchLen && i < n; j++ {
				out[i] = v
				i++
			}
		} else {
			for j := 0; j < patchLen && i < n; j++ {
				out[i] = rng.Float64()
				i++
			}
		}
	}
	return out
}

// Variant is one histogram code variant.
type Variant struct {
	Name string
	Run  func(p *Problem, dev *gpusim.Device) (Result, error)
}

// Result is a variant execution: reference counts plus simulated time.
type Result struct {
	Counts  []int64
	Seconds float64
}

// Variants returns the six code variants in the paper's Fig. 4 order:
// Sort-ES, Sort-Dynamic, Shared-Atomic-ES, Shared-Atomic-Dynamic,
// Global-Atomic-ES, Global-Atomic-Dynamic.
func Variants() []Variant {
	mk := func(name string, strat strategy, dynamic bool) Variant {
		return Variant{Name: name, Run: func(p *Problem, dev *gpusim.Device) (Result, error) {
			return runVariant(p, strat, dynamic, dev)
		}}
	}
	return []Variant{
		mk("Sort-ES", sortStrategy, false),
		mk("Sort-Dynamic", sortStrategy, true),
		mk("Shared-Atomic-ES", sharedStrategy, false),
		mk("Shared-Atomic-Dynamic", sharedStrategy, true),
		mk("Global-Atomic-ES", globalStrategy, false),
		mk("Global-Atomic-Dynamic", globalStrategy, true),
	}
}

// VariantNames returns the names in Variants order.
func VariantNames() []string {
	vs := Variants()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

type strategy int

const (
	sortStrategy strategy = iota
	sharedStrategy
	globalStrategy
)

const threadsPerBlock = 256

func runVariant(p *Problem, strat strategy, dynamic bool, dev *gpusim.Device) (Result, error) {
	p.analyze()
	n := len(p.Data)
	nTiles := (n + TileSize - 1) / TileSize
	run := gpusim.NewRun(dev)

	k := run.Launch("histogram", minInt(n, dev.MaxResidentThreads()*4))
	k.GlobalRead(float64(4 * n)) // 32-bit samples, coalesced

	switch strat {
	case globalStrategy:
		k.SkewedGlobalAtomics(n, p.Bins, p.maxShare)
	case sharedStrategy:
		// Block-private histograms bound contention to one block's threads,
		// then per-block results reduce into the global histogram.
		k.SkewedSharedAtomics(n, p.Bins, threadsPerBlock, p.maxShare)
		k.GlobalAtomics(nTiles*minInt(p.Bins, 1024), p.Bins)
		k.GlobalWrite(float64(4 * p.Bins))
	case sortStrategy:
		// Radix-sort the samples by bin id, then run-length detect.
		passes := (bitsFor(p.Bins) + 7) / 8
		if passes < 1 {
			passes = 1
		}
		for pass := 0; pass < passes; pass++ {
			k.GlobalRead(float64(4 * n))
			// Scatter writes land semi-coalesced.
			k.GlobalWrite(float64(4*n) * 1.5)
			k.ComputeSP(float64(4 * n))
		}
		k.GlobalRead(float64(4 * n)) // run-length detection pass
		k.ComputeSP(float64(2 * n))
		k.GlobalWrite(float64(4 * p.Bins))
	}

	// Grid mapping: even-share inherits the per-tile contention imbalance
	// (a block stuck on a hot tile extends the makespan); dynamic queueing
	// hides it behind a work queue with a small per-tile cost.
	if strat != sortStrategy {
		if dynamic {
			k.GlobalAtomics(nTiles, 1)
			k.Latency(float64(nTiles) * 10)
		} else {
			maxT, meanT := p.tileImbalance()
			if meanT > 0 {
				k.Imbalance(maxT, meanT)
			}
		}
	} else if dynamic {
		k.GlobalAtomics(nTiles, 1)
		k.Latency(float64(nTiles) * 10)
	}
	run.Done(k)

	return Result{Counts: p.Counts(), Seconds: run.Seconds()}, nil
}

func bitsFor(bins int) int {
	b := 0
	for v := bins - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
