package core

// Per-tier dispatch benchmarks: one bench per rung of the dispatch ladder,
// so regressions in a single tier are attributable. BenchmarkCallMemoHit is
// the steady-state repeat-caller fast path the sub-100ns target applies to;
// BenchmarkCallCompiled and BenchmarkCallExact isolate the compiled walk and
// the full scaler+SVM pass by disabling the tiers above them.

import (
	"testing"
)

func benchCalls(b *testing.B, cv *CodeVariant[testInput], distinct int) {
	ins := make([]testInput, 16)
	for i := range ins {
		ins[i] = testInput{X: float64(i % distinct)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		if _, _, err := cv.Call(ins[i&15]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

// BenchmarkCallMemoHit: repeat caller, memo tier serves every call after the
// first (distinct=1 keeps one hot entry).
func BenchmarkCallMemoHit(b *testing.B) {
	cv, _ := distilledConcurrentCV(b, DefaultPolicy("bench-memo"))
	benchCalls(b, cv, 1)
}

// BenchmarkCallCompiled: memo disabled, every call walks the compiled
// program (inputs cycle so no tier above can help).
func BenchmarkCallCompiled(b *testing.B) {
	p := DefaultPolicy("bench-compiled")
	p.Dispatch.DisableMemo = true
	cv, _ := distilledConcurrentCV(b, p)
	benchCalls(b, cv, 8)
}

// BenchmarkCallExact: both fast tiers disabled — the full scaler + SVM pass
// every call paid before this subsystem landed.
func BenchmarkCallExact(b *testing.B) {
	p := DefaultPolicy("bench-exact")
	p.Dispatch.DisableMemo = true
	p.Dispatch.DisableCompiled = true
	cv, _ := distilledConcurrentCV(b, p)
	benchCalls(b, cv, 8)
}

// BenchmarkCallNoModel: the default-variant path (no model installed).
func BenchmarkCallNoModel(b *testing.B) {
	cv, _ := buildConcurrentCV(b, DefaultPolicy("bench-nomodel"))
	if err := cv.Context().SetModel("bench-nomodel", nil); err != nil {
		b.Fatal(err)
	}
	benchCalls(b, cv, 8)
}
