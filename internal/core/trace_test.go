package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nitro/internal/obs"
)

// --- decision tracing ------------------------------------------------------

func TestTracingOffRecordsNothing(t *testing.T) {
	cv, _ := threeCV(t, "traceoff", nil)
	if cv.Tracer() != nil {
		t.Fatal("fresh CodeVariant has a tracer installed")
	}
	tr := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceOff})
	for i := 0; i < 10; i++ {
		if _, _, err := cv.Call(testInput{X: float64(i % 9)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != 0 {
		t.Fatalf("TraceOff recorded %d traces", tr.Count())
	}
	cv.DisableTracing()
	if cv.Tracer() != nil {
		t.Fatal("DisableTracing left a tracer installed")
	}
}

func TestTracingAlwaysCapturesDecision(t *testing.T) {
	cv, model := threeCV(t, "tracealways", nil)
	tr := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceAlways})
	in := testInput{X: 7}
	v, name, err := cv.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d, want 1", tr.Count())
	}
	rec := tr.Recent(1)[0]
	if rec.Function != "tracealways" {
		t.Errorf("Function = %q", rec.Function)
	}
	if len(rec.RawFeatures) != 1 || rec.RawFeatures[0] != 7 {
		t.Errorf("RawFeatures = %v", rec.RawFeatures)
	}
	if rec.ScaledFeatures == nil {
		t.Error("ScaledFeatures missing despite fitted scaler")
	}
	if rec.Predicted != model.Predict([]float64{7}) {
		t.Errorf("Predicted = %d, want %d", rec.Predicted, model.Predict([]float64{7}))
	}
	wantRanked := model.RankedClasses([]float64{7})
	if fmt.Sprint(rec.Ranked) != fmt.Sprint(wantRanked) {
		t.Errorf("Ranked = %v, want %v", rec.Ranked, wantRanked)
	}
	if len(rec.Scores) != 3 || len(rec.Classes) != 3 {
		t.Errorf("Scores/Classes = %v / %v", rec.Scores, rec.Classes)
	}
	if len(rec.PairDecisions) != 3 {
		t.Errorf("PairDecisions = %v, want 3 one-vs-one values", rec.PairDecisions)
	}
	if rec.Chosen != name || rec.Value != v {
		t.Errorf("trace (%q, %v) disagrees with Call (%q, %v)", rec.Chosen, rec.Value, name, v)
	}
	if rec.FellBack || rec.FallbackHops != 0 {
		t.Errorf("unexpected fallback: %+v", rec)
	}
	if rec.WallNanos < 0 || rec.Start.IsZero() {
		t.Errorf("wall-clock fields not captured: %+v", rec)
	}
	// The trace reproduces the exact choice Call made.
	if rec.ChosenIdx != rec.Predicted {
		t.Errorf("ChosenIdx = %d, Predicted = %d (no veto/fault in play)", rec.ChosenIdx, rec.Predicted)
	}
}

func TestTracingCapturesConstraintVeto(t *testing.T) {
	cv, _ := threeCV(t, "tracevetoed", nil)
	// Veto v2 (the model's pick for x=7) for every input.
	if err := cv.AddConstraint("v2", func(testInput) bool { return false }); err != nil {
		t.Fatal(err)
	}
	tr := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceAlways})
	_, name, err := cv.Call(testInput{X: 7})
	if err != nil {
		t.Fatal(err)
	}
	rec := tr.Recent(1)[0]
	if len(rec.Vetoed) != 1 || rec.Vetoed[0] != "v2" {
		t.Errorf("Vetoed = %v, want [v2]", rec.Vetoed)
	}
	if !rec.FellBack {
		t.Error("veto of the predicted variant did not mark FellBack")
	}
	if rec.Chosen != name {
		t.Errorf("trace chose %q, Call chose %q", rec.Chosen, name)
	}
}

func TestTracingCapturesFallbackHopsUnderFaults(t *testing.T) {
	// v2 (predicted for x=7) always panics: dispatch must hop to the
	// next-ranked variant and the trace must count the hop.
	cv, _ := threeCV(t, "tracehops", map[int]VariantFn[testInput]{
		2: func(testInput) float64 { panic("v2 down") },
	})
	tr := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceAlways})
	_, name, err := cv.Call(testInput{X: 7})
	if err != nil {
		t.Fatal(err)
	}
	if name != "v1" {
		t.Fatalf("fallback chose %q, want v1", name)
	}
	rec := tr.Recent(1)[0]
	if rec.FallbackHops != 1 {
		t.Errorf("FallbackHops = %d, want 1", rec.FallbackHops)
	}
	if !rec.FellBack || rec.Chosen != "v1" {
		t.Errorf("trace = %+v, want fellback chosen=v1", rec)
	}
	if rec.Predicted != 2 {
		t.Errorf("Predicted = %d, want the doomed 2", rec.Predicted)
	}
}

func TestTracingCapturesDispatchError(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("traceerr"))
	cv.AddVariant("only", func(testInput) float64 { return 1 })
	if err := cv.AddConstraint("only", func(testInput) bool { return false }); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})
	tr := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceAlways})
	_, _, err := cv.Call(testInput{X: 1})
	if !errors.Is(err, ErrAllVariantsVetoed) {
		t.Fatalf("err = %v", err)
	}
	rec := tr.Recent(1)[0]
	if rec.Err == "" || rec.ChosenIdx != -1 {
		t.Errorf("error trace = %+v", rec)
	}
	if !strings.Contains(rec.String(), "error=") {
		t.Errorf("String() = %q, want error form", rec.String())
	}
}

func TestTracingSampledSerialReplayIsByteIdentical(t *testing.T) {
	run := func() string {
		cv, _ := threeCV(t, "tracereplay", nil)
		tr := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceSampled, SamplePeriod: 3})
		var lines []string
		tr.SetSink(func(d obs.DecisionTrace) { lines = append(lines, d.String()) })
		for i := 0; i < 30; i++ {
			if _, _, err := cv.Call(testInput{X: float64(i % 9)}); err != nil {
				t.Fatal(err)
			}
		}
		return strings.Join(lines, "\n")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two serial replays produced different trace timelines:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "[trace 000001]") {
		t.Fatalf("timeline missing seq numbers:\n%s", a)
	}
}

// --- latency histograms ----------------------------------------------------

func TestLatencyHistogramsOffByDefault(t *testing.T) {
	cv, _ := threeCV(t, "histoff", nil)
	if _, _, err := cv.Call(testInput{X: 1}); err != nil {
		t.Fatal(err)
	}
	if got := cv.Context().Stats("histoff").Latency; got != nil {
		t.Fatalf("Latency populated without EnableLatencyHistograms: %v", got)
	}
}

func TestLatencyHistogramsAndRegret(t *testing.T) {
	cv, _ := threeCV(t, "histon", map[int]VariantFn[testInput]{
		0: func(testInput) float64 { return 0.001 },
		1: func(testInput) float64 { return 0.002 },
		2: func(testInput) float64 { return 0.004 },
	})
	cx := cv.Context()
	cx.EnableLatencyHistograms("histon")
	for i := 0; i < 30; i++ {
		if _, _, err := cv.Call(testInput{X: float64(i % 9)}); err != nil {
			t.Fatal(err)
		}
	}
	stats := cx.Stats("histon")
	if len(stats.Latency) != 3 {
		t.Fatalf("Latency = %v, want 3 variants", stats.Latency)
	}
	v0, v2 := stats.Latency["v0"], stats.Latency["v2"]
	if v0.Count == 0 || v2.Count == 0 {
		t.Fatalf("missing observations: %+v", stats.Latency)
	}
	if v0.Regret != 0 {
		t.Errorf("best variant regret = %v, want 0", v0.Regret)
	}
	// v2 runs 4x the best variant's value: regret ~3 (bucket resolution).
	if v2.Regret < 2 || v2.Regret > 4 {
		t.Errorf("v2 regret = %v, want ~3", v2.Regret)
	}
	if v0.P50 <= 0 || v0.P99 < v0.P50 {
		t.Errorf("quantiles inconsistent: %+v", v0)
	}
	cx.DisableLatencyHistograms("histon")
	if cx.Stats("histon").Latency != nil {
		t.Error("Latency still populated after disable")
	}
}

// --- Stats zero-value contract (satellite) ---------------------------------

func TestStatsUnregisteredFunctionContract(t *testing.T) {
	cx := NewContext()
	s := cx.Stats("never-registered")
	if s.PerVariant == nil {
		t.Fatal("PerVariant is nil; contract requires a non-nil empty map")
	}
	if len(s.PerVariant) != 0 || s.Calls != 0 || s.Latency != nil {
		t.Fatalf("unregistered stats not zero-valued: %+v", s)
	}
	// Ranging must be safe.
	for range s.PerVariant {
		t.Fatal("empty map yielded an entry")
	}
	// The query must not register the name as a side effect.
	cx.mu.Lock()
	_, leaked := cx.stats["never-registered"]
	cx.mu.Unlock()
	if leaked {
		t.Fatal("Stats registered the function name as a side effect")
	}
}

// --- Collector export ------------------------------------------------------

func TestContextCollectorExposition(t *testing.T) {
	cv, _ := threeCV(t, "export", nil)
	cx := cv.Context()
	cx.EnableLatencyHistograms("export")
	for i := 0; i < 9; i++ {
		if _, _, err := cv.Call(testInput{X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	reg.Register(cx.Collector())
	text, err := reg.PrometheusText()
	if err != nil {
		t.Fatalf("exposition failed: %v", err)
	}
	if err := obs.ValidatePrometheusText(text); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		`nitro_calls_total{function="export"} 9`,
		`nitro_variant_calls_total{function="export",variant="v0"}`,
		`nitro_variant_value_seconds_bucket{function="export",variant="v0",le="+Inf"}`,
		`nitro_variant_value_seconds_count{function="export",variant="v0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Deterministic between scrapes of an idle context.
	text2, _ := reg.PrometheusText()
	if text != text2 {
		t.Error("idle scrapes differ")
	}
}

func TestTracedDispatchMatchesUntraced(t *testing.T) {
	// Identical inputs through a traced and an untraced CodeVariant sharing
	// model shape must produce identical (value, variant) streams.
	run := func(trace bool) string {
		cv, _ := threeCV(t, fmt.Sprintf("parity%v", trace), nil)
		if trace {
			cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceAlways})
		}
		var b strings.Builder
		for i := 0; i < 27; i++ {
			v, name, err := cv.Call(testInput{X: float64(i % 9)})
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "%v %s\n", v, name)
		}
		return b.String()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("tracing changed dispatch results:\n%s---\n%s", a, b)
	}
}

func TestTracerCollectorThroughRegistry(t *testing.T) {
	cv, _ := threeCV(t, "tracermetrics", nil)
	tr := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceAlways})
	if _, _, err := cv.Call(testInput{X: 1}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	reg.Register(tr.Collector("tracermetrics"))
	text, err := reg.PrometheusText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `nitro_traces_recorded_total{function="tracermetrics"} 1`) {
		t.Fatalf("missing trace meta-metric:\n%s", text)
	}
}

func TestTraceWallNanosPlausible(t *testing.T) {
	cv, _ := threeCV(t, "tracewall", map[int]VariantFn[testInput]{
		0: func(testInput) float64 { time.Sleep(time.Millisecond); return 0 },
	})
	tr := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceAlways})
	if _, _, err := cv.Call(testInput{X: 0}); err != nil {
		t.Fatal(err)
	}
	rec := tr.Recent(1)[0]
	if rec.WallNanos < int64(time.Millisecond) {
		t.Errorf("WallNanos = %d, want >= 1ms (variant slept)", rec.WallNanos)
	}
}
