package core

// Tests for the tiered dispatch ladder (memo cache -> compiled artifact ->
// exact classifier): counter accounting, policy switches, epoch invalidation
// on model hot-swap and quarantine transitions, batched-vs-serial identity,
// and the zero-allocation fast path. The swap stress test is the -race
// gatekeeper for the memo cache's lock-free publication protocol.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nitro/internal/ml"
)

// singleClassModel fits an SVM on a one-label corpus: it predicts that label
// for every input, which makes "which model served this call" observable from
// the dispatched variant alone.
func singleClassModel(tb testing.TB, label int) *ml.Model {
	tb.Helper()
	ds := &ml.Dataset{}
	for x := 0.0; x < 4; x++ {
		ds.Append([]float64{x}, label)
	}
	svm := ml.NewSVM(ml.LinearKernel{}, 1)
	if err := svm.Fit(ds); err != nil {
		tb.Fatal(err)
	}
	return &ml.Model{Classifier: svm}
}

// distilledConcurrentCV is buildConcurrentCV plus a distilled compiled
// artifact installed on the model before it is published.
func distilledConcurrentCV(tb testing.TB, policy TuningPolicy) (*CodeVariant[testInput], *ml.Model) {
	tb.Helper()
	cv, model := buildConcurrentCV(tb, policy)
	corpus := make([][]float64, 10)
	for x := 0; x < 10; x++ {
		corpus[x] = []float64{float64(x)}
	}
	c, err := ml.Distill(model, corpus, ml.DistillOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	model.Compiled = c
	// Re-install so the published model carries the artifact (and the memo
	// epoch moves past anything cached against the bare model).
	if err := cv.Context().SetModel(policy.Name, model); err != nil {
		tb.Fatal(err)
	}
	return cv, model
}

func TestDispatchTierCounters(t *testing.T) {
	cv, _ := buildConcurrentCV(t, DefaultPolicy("tiers"))
	in := testInput{X: 7}
	for i := 0; i < 5; i++ {
		if _, name, err := cv.Call(in); err != nil || name != "large" {
			t.Fatalf("call %d: (%q, %v), want large", i, name, err)
		}
	}
	st := cv.Context().Stats("tiers")
	if st.Calls != 5 || st.ExactFallbacks != 1 || st.MemoHits != 4 || st.CompiledHits != 0 {
		t.Fatalf("after 5 identical calls: %+v, want 1 exact + 4 memo", st)
	}
	// A different input misses the memo and pays the exact path once more.
	if _, name, err := cv.Call(testInput{X: 1}); err != nil || name != "small" {
		t.Fatalf("distinct call: (%q, %v), want small", name, err)
	}
	st = cv.Context().Stats("tiers")
	if st.ExactFallbacks != 2 || st.MemoHits != 4 {
		t.Fatalf("after distinct input: %+v, want 2 exact + 4 memo", st)
	}
}

func TestMemoDisabledByPolicy(t *testing.T) {
	p := DefaultPolicy("nomemo")
	p.Dispatch.DisableMemo = true
	cv, _ := buildConcurrentCV(t, p)
	in := testInput{X: 7}
	for i := 0; i < 4; i++ {
		if _, _, err := cv.Call(in); err != nil {
			t.Fatal(err)
		}
	}
	st := cv.Context().Stats("nomemo")
	if st.MemoHits != 0 || st.ExactFallbacks != 4 {
		t.Fatalf("with memo disabled: %+v, want every call exact", st)
	}
}

// With a compiled artifact installed, the served variant choice must be
// identical to exact-only dispatch on every corpus input, and the compiled
// tier must actually decide calls (memo disabled so tiers stay visible).
func TestCompiledTierServesIdenticalChoices(t *testing.T) {
	p := DefaultPolicy("compiled")
	p.Dispatch.DisableMemo = true
	cv, _ := distilledConcurrentCV(t, p)

	pExact := DefaultPolicy("exactonly")
	pExact.Dispatch.DisableMemo = true
	pExact.Dispatch.DisableCompiled = true
	cvExact, _ := distilledConcurrentCV(t, pExact)

	for x := 0.0; x < 10; x++ {
		in := testInput{X: x}
		v1, n1, err1 := cv.Call(in)
		v2, n2, err2 := cvExact.Call(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if v1 != v2 || n1 != n2 {
			t.Fatalf("x=%v: compiled dispatch (%v,%q) != exact dispatch (%v,%q)", x, v1, n1, v2, n2)
		}
	}
	st := cv.Context().Stats("compiled")
	if st.CompiledHits+st.ExactFallbacks != 10 {
		t.Fatalf("tier counters don't cover all calls: %+v", st)
	}
	if st.CompiledHits == 0 {
		t.Fatalf("compiled tier never decided: %+v", st)
	}
	stE := cvExact.Context().Stats("exactonly")
	if stE.CompiledHits != 0 || stE.ExactFallbacks != 10 {
		t.Fatalf("DisableCompiled leaked compiled hits: %+v", stE)
	}
}

// SetModel must atomically invalidate every memoized prediction: a cached
// entry computed under the old model may never decide a call issued after the
// swap returns.
func TestMemoInvalidatedOnSetModel(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("swap"))
	cv.AddVariant("v0", func(testInput) float64 { return 0 })
	cv.AddVariant("v1", func(testInput) float64 { return 1 })
	if err := cv.SetDefault("v0"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})

	if err := cx.SetModel("swap", singleClassModel(t, 0)); err != nil {
		t.Fatal(err)
	}
	in := testInput{X: 5}
	for i := 0; i < 2; i++ { // second call is a memo hit
		if _, name, err := cv.Call(in); err != nil || name != "v0" {
			t.Fatalf("pre-swap call %d: (%q, %v), want v0", i, name, err)
		}
	}
	if st := cx.Stats("swap"); st.MemoHits != 1 {
		t.Fatalf("memo never engaged: %+v", st)
	}
	if err := cx.SetModel("swap", singleClassModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, name, err := cv.Call(in); err != nil || name != "v1" {
		t.Fatalf("post-swap call served (%q, %v), want v1 — stale memo entry dispatched", name, err)
	}
	if st := cx.Stats("swap"); st.ExactFallbacks != 2 {
		t.Fatalf("post-swap call did not re-predict: %+v", st)
	}
}

// A quarantine trip (or recovery) bumps the quarantine epoch, which must
// invalidate memoized predictions even though the model never changed.
func TestMemoInvalidatedOnQuarantineTransition(t *testing.T) {
	p := DefaultPolicy("qepoch")
	p.Quarantine = QuarantinePolicy{Threshold: 2, Window: time.Minute, Cooldown: time.Hour}
	cv, _ := buildConcurrentCV(t, p)
	boom := cv.AddVariant("boom", func(testInput) float64 { panic("down") })

	in := testInput{X: 7}
	for i := 0; i < 2; i++ {
		if _, _, err := cv.Call(in); err != nil {
			t.Fatal(err)
		}
	}
	st := cv.Context().Stats("qepoch")
	if st.MemoHits != 1 || st.ExactFallbacks != 1 {
		t.Fatalf("warmup: %+v, want 1 exact + 1 memo", st)
	}
	// Trip boom's breaker through the exploration path (not a served call).
	for i := 0; i < 2; i++ {
		if _, err := cv.ObserveVariant(boom, in); err == nil {
			t.Fatal("boom should fail")
		}
	}
	if st = cv.Context().Stats("qepoch"); st.Quarantined != 1 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if _, _, err := cv.Call(in); err != nil {
		t.Fatal(err)
	}
	if st = cv.Context().Stats("qepoch"); st.ExactFallbacks != 2 {
		t.Fatalf("post-trip call reused a stale memo entry: %+v", st)
	}
}

// Swap stress: goroutines hammer one memoized input while another goroutine
// hot-swaps between two single-class models. A seqlock-style phase counter
// brackets each call; whenever the phase is stable (even and unchanged across
// the call), the dispatched variant must be the one the installed model of
// that phase predicts — i.e. no call after SetModel returns may be decided by
// a stale cached prediction. Run under -race this also polices the memo
// cache's publication protocol.
func TestMemoSwapStressNoStaleDispatch(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("stress"))
	cv.AddVariant("v0", func(testInput) float64 { return 0 })
	cv.AddVariant("v1", func(testInput) float64 { return 1 })
	if err := cv.SetDefault("v0"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})

	models := [2]*ml.Model{singleClassModel(t, 0), singleClassModel(t, 1)}
	if err := cx.SetModel("stress", models[0]); err != nil {
		t.Fatal(err)
	}

	// phase protocol: odd while a swap is in flight; after 2k total
	// increments, models[k%2] is installed (k complete swaps, starting from
	// models[0] at phase 0... swap j installs models[j%2]).
	var phase atomic.Uint64
	var stale atomic.Int64
	done := make(chan struct{})

	const swaps = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for j := 1; j <= swaps; j++ {
			phase.Add(1) // odd: swap in flight
			if err := cx.SetModel("stress", models[j%2]); err != nil {
				t.Error(err)
				return
			}
			phase.Add(1) // even: swap j complete
		}
	}()

	callers := 4
	wg.Add(callers)
	for g := 0; g < callers; g++ {
		go func() {
			defer wg.Done()
			in := testInput{X: 5}
			for {
				select {
				case <-done:
					return
				default:
				}
				p1 := phase.Load()
				if p1%2 != 0 {
					continue // swap in flight; outcome is legitimately either
				}
				_, name, err := cv.Call(in)
				if err != nil {
					t.Error(err)
					return
				}
				if p2 := phase.Load(); p2 == p1 {
					want := "v0"
					if (p1/2)%2 == 1 {
						want = "v1"
					}
					if name != want {
						stale.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := stale.Load(); n != 0 {
		t.Fatalf("%d calls in a stable phase dispatched the other model's pick — stale memo served after swap", n)
	}
	st := cx.Stats("stress")
	if st.MemoHits == 0 {
		t.Fatalf("stress loop never hit the memo tier: %+v", st)
	}
}

// Batched CallConcurrent must produce per-input results identical to N
// independent serial calls, with the memo and compiled tiers engaged.
func TestCallConcurrentBatchedMatchesSerialTiers(t *testing.T) {
	cv, _ := distilledConcurrentCV(t, DefaultPolicy("batch"))
	cvSerial, _ := distilledConcurrentCV(t, DefaultPolicy("batch-serial"))

	ins := make([]testInput, 64)
	for i := range ins {
		ins[i] = testInput{X: float64(i % 8)}
	}
	// Two rounds: the first populates the memo (intra-batch duplicates all
	// miss — lookups run before any store), the second is served from it.
	for round := 0; round < 2; round++ {
		res := cv.CallConcurrent(ins, 4)
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("round %d result %d: %v", round, i, r.Err)
			}
			v, name, err := cvSerial.Call(ins[i])
			if err != nil {
				t.Fatal(err)
			}
			if r.Value != v || r.Variant != name {
				t.Fatalf("round %d input %d: batch (%v,%q) != serial (%v,%q)", round, i, r.Value, r.Variant, v, name)
			}
		}
	}
	st := cv.Context().Stats("batch")
	if st.Calls != 2*len(ins) {
		t.Fatalf("batch recorded %d calls, want %d", st.Calls, 2*len(ins))
	}
	if st.MemoHits+st.CompiledHits+st.ExactFallbacks != 2*len(ins) {
		t.Fatalf("tier counters don't cover the batches: %+v", st)
	}
	if st.MemoHits < len(ins) {
		t.Fatalf("second batch should be memo-served: %+v", st)
	}
}

// The steady-state Call fast path (memo hit) must not allocate.
func TestCallFastPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	cv, _ := distilledConcurrentCV(t, DefaultPolicy("zeroalloc"))
	in := testInput{X: 7}
	if _, _, err := cv.Call(in); err != nil { // warm memo + pools
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(500, func() {
		if _, _, err := cv.Call(in); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("memoized Call allocates %v per run, want 0", n)
	}
}
