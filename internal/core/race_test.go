//go:build race

package core

// raceEnabled reports whether the race detector is on; allocation-count
// assertions skip under it (instrumentation allocates).
const raceEnabled = true
