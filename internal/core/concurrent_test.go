package core

// Stress tests and throughput benchmarks for the concurrency-safe deployment
// runtime: N goroutines hammering one shared CodeVariant with Call,
// FixInputs/CallFixed, SetModel hot-swaps and Stats snapshots (run under
// -race in CI), plus a determinism test that concurrent statistics sum to
// exactly the serial statistics, and BenchmarkCallParallel proving the
// predict path scales with GOMAXPROCS.

import (
	"sync"
	"testing"

	"nitro/internal/ml"
)

// buildConcurrentCV constructs a two-variant tunable function with integer-
// valued costs/values (so statistic sums are exact under any addition order)
// and returns it with a trained model for the x<4.5 boundary.
func buildConcurrentCV(tb testing.TB, policy TuningPolicy) (*CodeVariant[testInput], *ml.Model) {
	tb.Helper()
	cx := NewContext()
	cv := New[testInput](cx, policy)
	cv.AddVariant("small", func(in testInput) float64 { return 1 + in.X })
	cv.AddVariant("large", func(in testInput) float64 { return 10 - in.X })
	if err := cv.SetDefault("small"); err != nil {
		tb.Fatal(err)
	}
	cv.AddInputFeature(Feature[testInput]{
		Name: "x",
		Eval: func(in testInput) float64 { return in.X },
		Cost: func(testInput) float64 { return 1 }, // integer: exact sums
	})

	ds := &ml.Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		tb.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: ds.Y}); err != nil {
		tb.Fatal(err)
	}
	model := &ml.Model{Classifier: svm, Scaler: scaler}
	cx.SetModel(policy.Name, model)
	return cv, model
}

// TestConcurrentRuntimeStress mixes every runtime operation across >= 8
// goroutines on one shared CodeVariant. The race detector polices memory
// safety; the final assertions police accounting: every successful call is
// counted exactly once, no matter how the operations interleaved.
func TestConcurrentRuntimeStress(t *testing.T) {
	p := DefaultPolicy("stress")
	p.AsyncFeatureEval = true
	cv, model := buildConcurrentCV(t, p)
	cx := cv.Context()

	const goroutines = 12
	const iters = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				in := testInput{X: float64((g + i) % 10)}
				switch i % 4 {
				case 0: // synchronous dispatch
					if _, _, err := cv.Call(in); err != nil {
						t.Errorf("Call: %v", err)
						return
					}
				case 1: // per-call async future
					f := cv.FixInputs(in)
					if _, _, err := cv.CallFixed(f); err != nil {
						t.Errorf("CallFixed: %v", err)
						return
					}
				case 2: // model hot-swap mid-traffic (reinstall / uninstall)
					if i%8 == 2 {
						cx.SetModel("stress", nil)
					} else {
						cx.SetModel("stress", model)
					}
					if _, _, err := cv.Call(in); err != nil {
						t.Errorf("Call after swap: %v", err)
						return
					}
				case 3: // stats snapshot concurrent with recording
					st := cx.Stats("stress")
					if st.Calls < 0 || st.TotalValue < 0 {
						t.Errorf("torn snapshot: %+v", st)
						return
					}
					if _, _, err := cv.Call(in); err != nil {
						t.Errorf("Call: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := cx.Stats("stress")
	if want := goroutines * iters; st.Calls != want {
		t.Errorf("Calls = %d, want %d (every successful call counted exactly once)", st.Calls, want)
	}
	var perVariant int
	for _, n := range st.PerVariant {
		perVariant += n
	}
	if perVariant != st.Calls {
		t.Errorf("per-variant counts sum to %d, want %d", perVariant, st.Calls)
	}
	cx.SetModel("stress", model)
	if m, ok := cx.Model("stress"); !ok || m != model {
		t.Error("model not observable after the final install")
	}
}

// TestConcurrentStatsMatchSerial runs the same workload serially and
// concurrently and requires bit-identical aggregate statistics: with
// integer-valued costs and values the shard sums are exact, so the sharded
// counters must reproduce the serial totals regardless of scheduling.
func TestConcurrentStatsMatchSerial(t *testing.T) {
	inputs := make([]testInput, 400)
	for i := range inputs {
		inputs[i] = testInput{X: float64(i % 10)}
	}

	run := func(parallelism int) CallStats {
		cv, _ := buildConcurrentCV(t, DefaultPolicy("det"))
		res := cv.CallConcurrent(inputs, parallelism)
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("input %d: %v", i, r.Err)
			}
		}
		return cv.Context().Stats("det")
	}

	serial := run(1)
	if serial.Calls != len(inputs) {
		t.Fatalf("serial calls = %d", serial.Calls)
	}
	for _, workers := range []int{0, 4, 16} {
		got := run(workers)
		if got.Calls != serial.Calls ||
			got.DefaultFallbacks != serial.DefaultFallbacks ||
			got.TotalValue != serial.TotalValue ||
			got.FeatureSeconds != serial.FeatureSeconds {
			t.Errorf("workers=%d: stats %+v differ from serial %+v", workers, got, serial)
		}
		for name, n := range serial.PerVariant {
			if got.PerVariant[name] != n {
				t.Errorf("workers=%d: PerVariant[%q] = %d, want %d", workers, name, got.PerVariant[name], n)
			}
		}
	}
}

// TestConcurrentFixedHandles verifies that many in-flight futures on one
// CodeVariant stay independent: each goroutine's CallFixed must execute on
// its own fixed input even while other futures resolve around it.
func TestConcurrentFixedHandles(t *testing.T) {
	p := DefaultPolicy("handles")
	p.AsyncFeatureEval = true
	p.ParallelFeatureEval = true
	cv, _ := buildConcurrentCV(t, p)

	const goroutines = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				x := float64((g*7 + i) % 10)
				f := cv.FixInputs(testInput{X: x})
				val, name, err := f.Call()
				if err != nil {
					t.Errorf("g%d: %v", g, err)
					return
				}
				// The value function is deterministic in the input, so the
				// returned value proves which input the variant executed on.
				want := 1 + x
				if name == "large" {
					want = 10 - x
				}
				if val != want {
					t.Errorf("g%d: executed on the wrong input: %q returned %v for x=%v", g, name, val, x)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkCallSerial is the single-goroutine baseline for the selection hot
// path (feature eval + SVM predict + constraint check + stats record).
func BenchmarkCallSerial(b *testing.B) {
	cv, _ := buildConcurrentCV(b, DefaultPolicy("bench"))
	in := testInput{X: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cv.Call(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallParallel hammers one shared CodeVariant from GOMAXPROCS
// goroutines via b.RunParallel. With the lock-free model pointer and sharded
// statistics the per-op time should approach BenchmarkCallSerial divided by
// the core count — any global mutex on the predict path would flatten this
// to serial throughput.
func BenchmarkCallParallel(b *testing.B) {
	cv, _ := buildConcurrentCV(b, DefaultPolicy("bench"))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		in := testInput{X: 7}
		for pb.Next() {
			if _, _, err := cv.Call(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCallFixedParallel measures the per-call future path under the
// same parallel load (allocate handle, background eval, barrier, dispatch).
func BenchmarkCallFixedParallel(b *testing.B) {
	p := DefaultPolicy("bench")
	p.AsyncFeatureEval = true
	cv, _ := buildConcurrentCV(b, p)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		in := testInput{X: 7}
		for pb.Next() {
			f := cv.FixInputs(in)
			if _, _, err := cv.CallFixed(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCallConcurrentBatch measures batched dispatch over internal/par.
func BenchmarkCallConcurrentBatch(b *testing.B) {
	cv, _ := buildConcurrentCV(b, DefaultPolicy("bench"))
	ins := make([]testInput, 1024)
	for i := range ins {
		ins[i] = testInput{X: float64(i % 10)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cv.CallConcurrent(ins, 0)
		if res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
	}
}
