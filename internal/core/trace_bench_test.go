package core_test

// Decision-trace overhead benchmarks. The ISSUE-5 acceptance criterion is
// that BenchmarkCallParallel with tracing off stays within noise of the
// pre-observability baseline: the untraced dispatch pays exactly one atomic
// tracer load. These benches quantify the three policy modes on the same
// two-variant fixture the adaptation benches use:
//
//   - BenchmarkCallTracedOff: tracer installed in Off mode — one atomic load
//     plus one mode check per call (the EnableTracing-but-muted cost).
//   - BenchmarkCallTracedSampled: 1-in-64 admission (the default period) —
//     the amortized production configuration.
//   - BenchmarkCallTracedAlways: every call captured, including the
//     ml.Model.Explain re-derivation — the debugging ceiling, not a
//     deployment mode.
//
// Numbers are recorded in EXPERIMENTS.md §trace-overhead.

import (
	"testing"

	"nitro/internal/obs"
)

func benchTraced(b *testing.B, mode obs.TraceMode) {
	cv := buildAdaptiveCV(b)
	cv.EnableTracing(obs.TracePolicy{Mode: mode})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := cv.Call(benchInput{X: float64(i % 10)}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkCallTracedOff(b *testing.B)     { benchTraced(b, obs.TraceOff) }
func BenchmarkCallTracedSampled(b *testing.B) { benchTraced(b, obs.TraceSampled) }
func BenchmarkCallTracedAlways(b *testing.B)  { benchTraced(b, obs.TraceAlways) }

// BenchmarkCallHistograms measures the latency-histogram record cost on the
// same fixture (one atomic pointer load + bucket add + CAS sum per call).
func BenchmarkCallHistograms(b *testing.B) {
	cv := buildAdaptiveCV(b)
	cv.Context().EnableLatencyHistograms("adapt-bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := cv.Call(benchInput{X: float64(i % 10)}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
