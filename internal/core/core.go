// Package core implements the Nitro library runtime — the paper's primary
// contribution. It provides the code_variant abstraction: a tunable function
// with registered variants, input-feature functions and per-variant
// constraints, plus the deployment-time selection engine that consults a
// trained model, enforces constraints (falling back to an allowed variant),
// and evaluates features in parallel or asynchronously (the paper's TBB
// optimizations, realized with goroutines).
//
// The generic parameter In is the tunable function's input type, mirroring
// the C++ template argument tuple of the original library.
//
// # Concurrency model
//
// The runtime is built to serve concurrent traffic on one shared
// CodeVariant:
//
//   - Registration (AddVariant, AddInputFeature, AddConstraint, SetDefault)
//     is a setup-phase activity: finish it before the first concurrent Call,
//     per the usual Go convention that configuration happens-before use.
//   - Call, FixInputs, CallFixed, CallConcurrent, FeatureVector, SelectIndex
//     and Allowed are safe for unlimited concurrent use. They carry no shared
//     mutable state: asynchronous feature evaluation lives in a per-call
//     Fixed handle, never in the CodeVariant.
//   - The installed model is held in an atomic pointer, so Context.SetModel
//     hot-swaps a retuned model mid-traffic without ever blocking the
//     predict path.
//   - Call statistics are sharded atomic counters; recording a call takes no
//     lock, and Context.Stats sums the shards into a consistent-enough
//     snapshot (counts never tear; a snapshot taken during traffic may lag
//     in-flight calls by design).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"nitro/internal/ml"
	"nitro/internal/obs"
	"nitro/internal/par"
)

// ErrAllVariantsVetoed is returned by Call/SelectIndex when constraints veto
// every registered variant for an input: there is nothing safe to execute,
// and silently running a vetoed variant (the pre-fix behaviour for a vetoed
// default) could crash or diverge.
var ErrAllVariantsVetoed = errors.New("core: all variants vetoed by constraints")

// errNoVariants is returned when Call runs before any variant is registered.
var errNoVariants = errors.New("core: no variants registered")

// ErrModelMismatch is wrapped by SetModel/LoadModel when an installed model
// is structurally incompatible with the registered tunable function (scaler
// feature dimension != registered feature count, or a class label outside
// the registered variant range). Installing such a model used to succeed and
// then corrupt or crash the predict path on the first call.
var ErrModelMismatch = errors.New("core: model incompatible with registered function")

// modelSlot is one function's installed-model cell. The pointer is swapped
// atomically so model installation (SetModel/LoadModel) never contends with
// the predict path: readers Load, writers Store, nobody locks.
type modelSlot struct {
	p atomic.Pointer[ml.Model]
	// epoch counts installs. The memo tier stamps every cached prediction
	// with the epoch observed BEFORE loading the model, so bumping it here
	// atomically invalidates all memoized predictions from older models (see
	// memoCache for the ordering argument).
	epoch atomic.Uint64
	// canary optionally holds a challenger model served to a fraction of
	// calls (see canary.go). Installing or clearing it does not bump the
	// epoch: canary-served predictions bypass the memo cache entirely, so
	// stable-model entries stay valid across the whole rollout.
	canary atomic.Pointer[canaryCell]
}

// install publishes a model and bumps the epoch. The order matters: the new
// model is visible before the epoch moves, so a predict that reads the old
// epoch and then loads the new model merely under-stamps its memo entry
// (conservatively stale) — it can never stamp an old-model prediction fresh.
func (s *modelSlot) install(m *ml.Model) {
	s.p.Store(m)
	s.epoch.Add(1)
}

// statsShards is the number of counter shards per tunable function. Calls
// scatter across shards to keep concurrent writers off each other's cache
// lines; 32 comfortably covers the core counts this repo targets while
// keeping snapshots cheap.
const statsShards = 32

// atomicFloat64 is a float64 accumulated with compare-and-swap, for the
// value/feature-cost sums on the lock-free record path.
type atomicFloat64 struct {
	bits atomic.Uint64
}

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// statsShard is one slice of a function's call counters. The trailing pad
// separates neighbouring shards so two cores incrementing different shards do
// not false-share a cache line.
type statsShard struct {
	calls     atomic.Int64
	fallbacks atomic.Int64
	value     atomicFloat64
	featSecs  atomicFloat64
	// Failure accounting (the fault-tolerant dispatch layer).
	panics     atomic.Int64 // variant invocations that panicked (recovered)
	timeouts   atomic.Int64 // variant invocations that exceeded VariantTimeout
	failFb     atomic.Int64 // failure-driven fallback hops (one per attempt)
	trips      atomic.Int64 // quarantine trips (variant entered quarantine)
	recoveries atomic.Int64 // successful half-open probes (variant recovered)
	// Dispatch-tier accounting: which rung of the prediction ladder served
	// each model prediction.
	memoHits     atomic.Int64 // predictions served from the memo cache
	compiledHits atomic.Int64 // predictions served by the compiled artifact
	exactPreds   atomic.Int64 // predictions that evaluated the exact model
	// perVariant maps variant name -> *atomic.Int64. After the first call to
	// a given variant the sync.Map read path is lock-free.
	perVariant sync.Map
	_          [64]byte
}

// funcStats aggregates one tunable function's deployment statistics across
// shards. Recording picks a shard with a cheap per-goroutine random draw
// (math/rand/v2's lock-free per-thread generator), so the hot path is a
// handful of uncontended atomic adds.
type funcStats struct {
	shards [statsShards]statsShard
	// breakers maps variant name -> *breaker: the per-variant quarantine
	// state, shared by every CodeVariant bound to this function name so all
	// of them agree on variant health. Stored here (not per shard) because a
	// circuit breaker must trip globally.
	breakers sync.Map
	// hists is the opt-in per-variant latency histogram table
	// (Context.EnableLatencyHistograms). Nil — the default — costs the record
	// hot path exactly one atomic pointer load.
	hists atomic.Pointer[histTable]
	// qEpoch counts quarantine-state transitions (trips and recoveries).
	// Like modelSlot.epoch it stamps memo entries, so any breaker state
	// change atomically invalidates the memoization tier.
	qEpoch atomic.Uint64
}

// breakerFor returns (creating if needed) the named variant's breaker.
func (fs *funcStats) breakerFor(variant string) *breaker {
	if b, ok := fs.breakers.Load(variant); ok {
		return b.(*breaker)
	}
	b, _ := fs.breakers.LoadOrStore(variant, &breaker{})
	return b.(*breaker)
}

// shard picks a random shard (lock-free per-thread generator).
func (fs *funcStats) shard() *statsShard { return &fs.shards[shardIdx()] }

// shardIdx picks the calling goroutine's statistics shard from the address
// of a stack byte: goroutine stacks are disjoint, so concurrent callers
// spread across shards while a single goroutine keeps re-touching the same
// cache lines — the distribution a PRNG draw bought before, at a fraction of
// its hot-path cost. Only the address's value is used (pointer -> uintptr is
// the safe conversion direction); stack growth merely reshuffles the hint.
func shardIdx() uint64 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h & (statsShards - 1)
}

// recordFailure counts one failed variant invocation.
func (fs *funcStats) recordFailure(panicked, timedOut bool) {
	sh := fs.shard()
	if panicked {
		sh.panics.Add(1)
	}
	if timedOut {
		sh.timeouts.Add(1)
	}
}

// recordHop counts one failure-driven fallback attempt.
func (fs *funcStats) recordHop() { fs.shard().failFb.Add(1) }

// recordTrip counts one quarantine trip and invalidates the memo tier.
func (fs *funcStats) recordTrip() {
	fs.shard().trips.Add(1)
	fs.qEpoch.Add(1)
}

// recordRecovery counts one successful half-open probe and invalidates the
// memo tier.
func (fs *funcStats) recordRecovery() {
	fs.shard().recoveries.Add(1)
	fs.qEpoch.Add(1)
}

// recordTier counts one model prediction against the tier that served it.
func (fs *funcStats) recordTier(t ml.Tier) {
	switch t {
	case ml.TierMemo:
		fs.shard().memoHits.Add(1)
	case ml.TierCompiled:
		fs.shard().compiledHits.Add(1)
	case ml.TierExact:
		fs.shard().exactPreds.Add(1)
	}
}

// record counts one successful dispatch. cache is the dispatching variant's
// per-shard counter cache (variantEntry.cnt): the string-keyed perVariant
// lookup runs once per (variant, shard) and every later call is a single
// pointer load plus an atomic add — the sync.Map hash was the largest single
// cost on the dispatch fast path before this cache.
func (fs *funcStats) record(variant string, cache *[statsShards]atomic.Pointer[atomic.Int64], value, featSeconds float64, fallback bool) {
	i := shardIdx()
	sh := &fs.shards[i]
	sh.calls.Add(1)
	sh.value.Add(value)
	if featSeconds != 0 {
		sh.featSecs.Add(featSeconds)
	}
	if fallback {
		sh.fallbacks.Add(1)
	}
	cp := cache[i].Load()
	if cp == nil {
		// LoadOrStore is idempotent, so racing resolutions cache the same
		// counter and no count is ever split.
		c, ok := sh.perVariant.Load(variant)
		if !ok {
			c, _ = sh.perVariant.LoadOrStore(variant, new(atomic.Int64))
		}
		cp = c.(*atomic.Int64)
		cache[i].Store(cp)
	}
	cp.Add(1)
	if ht := fs.hists.Load(); ht != nil {
		ht.record(variant, value)
	}
}

// snapshot sums the shards into a CallStats copy. When latency histograms are
// enabled the per-variant summaries are digested too, with the regret
// estimate filled relative to the best (lowest-mean) variant.
func (fs *funcStats) snapshot() CallStats {
	out := CallStats{PerVariant: map[string]int{}}
	for i := range fs.shards {
		sh := &fs.shards[i]
		out.Calls += int(sh.calls.Load())
		out.DefaultFallbacks += int(sh.fallbacks.Load())
		out.TotalValue += sh.value.Load()
		out.FeatureSeconds += sh.featSecs.Load()
		out.Panics += int(sh.panics.Load())
		out.Timeouts += int(sh.timeouts.Load())
		out.Fallbacks += int(sh.failFb.Load())
		out.Quarantined += int(sh.trips.Load())
		out.Recoveries += int(sh.recoveries.Load())
		out.MemoHits += int(sh.memoHits.Load())
		out.CompiledHits += int(sh.compiledHits.Load())
		out.ExactFallbacks += int(sh.exactPreds.Load())
		sh.perVariant.Range(func(k, v any) bool {
			out.PerVariant[k.(string)] += int(v.(*atomic.Int64).Load())
			return true
		})
	}
	if ht := fs.hists.Load(); ht != nil {
		out.Latency = ht.summaries()
	}
	return out
}

// Context maintains the global state shared by all code variants in a
// program: the per-function trained models and call statistics. It mirrors
// the paper's nitro::context. A Context is safe for concurrent use; model
// lookup and statistics recording on the Call hot path are lock-free (the
// mutex only guards registration of new function names).
type Context struct {
	mu     sync.Mutex // guards the maps below, never held on the Call hot path
	models map[string]*modelSlot
	stats  map[string]*funcStats
	shapes map[string]funcShape
}

// funcShape records what a registered tunable function looks like — how many
// features and variants it has — so model installation can be validated
// against it. Zero fields mean "not registered yet" and skip that check.
type funcShape struct {
	featureDim  int
	numVariants int
}

// NewContext returns an empty tuning context.
func NewContext() *Context {
	return &Context{models: map[string]*modelSlot{}, stats: map[string]*funcStats{}, shapes: map[string]funcShape{}}
}

// noteShape records (monotonically) the named function's feature/variant
// counts as a CodeVariant registers them.
func (cx *Context) noteShape(fn string, featureDim, numVariants int) {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	s := cx.shapes[fn]
	if featureDim > s.featureDim {
		s.featureDim = featureDim
	}
	if numVariants > s.numVariants {
		s.numVariants = numVariants
	}
	cx.shapes[fn] = s
}

// validateModel checks m against the registered shape of fn (when one is
// known): the scaler's feature dimension must match the registered feature
// count, and every class label must name a registered variant. A model
// installed before any CodeVariant registered fn's features/variants is
// accepted as-is (there is nothing to check it against yet).
func (cx *Context) validateModel(fn string, m *ml.Model) error {
	cx.mu.Lock()
	shape, ok := cx.shapes[fn]
	cx.mu.Unlock()
	if !ok {
		return nil
	}
	if shape.featureDim > 0 && m.Scaler != nil && m.Scaler.Fitted() && len(m.Scaler.Min) != shape.featureDim {
		return fmt.Errorf("%w: scaler expects %d features, function %q registers %d",
			ErrModelMismatch, len(m.Scaler.Min), fn, shape.featureDim)
	}
	if shape.numVariants > 0 && m.Classifier != nil {
		for _, c := range m.Classifier.Classes() {
			if c < 0 || c >= shape.numVariants {
				return fmt.Errorf("%w: class label %d outside function %q's %d registered variants",
					ErrModelMismatch, c, fn, shape.numVariants)
			}
		}
	}
	return nil
}

// slotFor returns (creating if needed) the named function's model cell.
func (cx *Context) slotFor(fn string) *modelSlot {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	s, ok := cx.models[fn]
	if !ok {
		s = &modelSlot{}
		cx.models[fn] = s
	}
	return s
}

// statsFor returns (creating if needed) the named function's counters.
func (cx *Context) statsFor(fn string) *funcStats {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	s, ok := cx.stats[fn]
	if !ok {
		s = &funcStats{}
		cx.stats[fn] = s
	}
	return s
}

// SetModel installs the trained model for the named tunable function. The
// swap is atomic: calls in flight keep the model they already loaded, and
// subsequent calls see m — tuned models can be reloaded mid-traffic without
// pausing the predict path. Installing nil uninstalls the model.
//
// When fn's shape is known (a CodeVariant has registered features/variants
// for it), the model is validated first: a scaler whose feature dimension
// disagrees with the registered features, or a class label naming no
// registered variant, is rejected with an error wrapping ErrModelMismatch
// and the previously installed model stays in place.
func (cx *Context) SetModel(fn string, m *ml.Model) error {
	if m != nil {
		if err := cx.validateModel(fn, m); err != nil {
			return fmt.Errorf("core: install model for %q: %w", fn, err)
		}
	}
	cx.slotFor(fn).install(m)
	return nil
}

// Model returns the model for the named function, if one is installed.
func (cx *Context) Model(fn string) (*ml.Model, bool) {
	m := cx.slotFor(fn).p.Load()
	return m, m != nil
}

// SaveModel persists the named function's model to a JSON file (the
// deployment artifact that replaces the paper's generated header + libSVM
// model pair).
func (cx *Context) SaveModel(fn, path string) error {
	m, ok := cx.Model(fn)
	if !ok {
		return fmt.Errorf("core: no model for %q", fn)
	}
	data, err := ml.MarshalModel(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads a model from a JSON file and installs it for fn. Like
// SetModel it is safe to call while fn is serving traffic.
func (cx *Context) LoadModel(fn, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := ml.UnmarshalModel(data)
	if err != nil {
		return fmt.Errorf("core: load model for %q from %s: %w", fn, path, err)
	}
	if err := cx.SetModel(fn, m); err != nil {
		return fmt.Errorf("core: load model from %s: %w", path, err)
	}
	return nil
}

// CallStats aggregates deployment-time selection statistics for one tunable
// function.
type CallStats struct {
	Calls            int
	PerVariant       map[string]int
	DefaultFallbacks int
	TotalValue       float64
	FeatureSeconds   float64

	// Failure accounting (fault-tolerant dispatch).

	// Panics counts variant invocations that panicked and were recovered.
	Panics int
	// Timeouts counts variant invocations that exceeded VariantTimeout.
	Timeouts int
	// Fallbacks counts failure-driven fallback hops: every additional
	// variant attempted after a panic/timeout/abort (distinct from
	// DefaultFallbacks, which counts constraint/model fallbacks at
	// selection time).
	Fallbacks int
	// Quarantined counts quarantine trips — times a variant's circuit
	// breaker opened after Threshold failures inside one Window.
	Quarantined int
	// Recoveries counts successful half-open probes — times a quarantined
	// variant was readmitted to selection.
	Recoveries int

	// Dispatch-tier accounting: every model prediction lands in exactly one
	// of the three buckets below (calls without an installed model land in
	// none). MemoHits were served by the memoization cache, CompiledHits by
	// the distilled compiled artifact with margin clearance, and
	// ExactFallbacks evaluated the exact classifier — either because no
	// artifact is installed or because the input landed within the
	// calibrated margin of a distilled decision boundary.
	MemoHits       int
	CompiledHits   int
	ExactFallbacks int

	// Latency holds the per-variant latency digest (p50/p95/p99 plus the
	// regret estimate relative to the best variant), populated only after
	// Context.EnableLatencyHistograms(fn); nil otherwise.
	Latency map[string]obs.LatencySummary
}

// Stats returns a snapshot of the call statistics for fn. Taken under
// concurrent traffic the snapshot is a sum over shards: totals never tear,
// but calls that complete while the snapshot runs may or may not be counted.
//
// Contract: Stats on a function name that has never been registered (no
// CodeVariant bound, no call recorded) returns the zero-value CallStats with
// a non-nil empty PerVariant map — callers can range over PerVariant
// unconditionally — and does NOT register the name as a side effect.
func (cx *Context) Stats(fn string) CallStats {
	cx.mu.Lock()
	fs, ok := cx.stats[fn]
	cx.mu.Unlock()
	if !ok {
		return CallStats{PerVariant: map[string]int{}}
	}
	return fs.snapshot()
}

// TuningPolicy carries the per-function options the paper's Python tuning
// script writes into the generated header.
type TuningPolicy struct {
	// Name identifies the tunable function; models are keyed by it.
	Name string
	// ParallelFeatureEval evaluates feature functions concurrently.
	ParallelFeatureEval bool
	// AsyncFeatureEval makes FixInputs start feature evaluation in the
	// background; CallFixed then blocks on the result (the implicit
	// barrier). Without it FixInputs evaluates eagerly on the caller.
	AsyncFeatureEval bool
	// ConstraintsEnabled toggles deployment-time constraint checking.
	ConstraintsEnabled bool
	// VariantTimeout, when positive, bounds every variant invocation: a
	// variant that runs longer fails with ErrVariantTimeout (wrapped in a
	// *VariantError) and dispatch walks the fallback chain. The overrunning
	// goroutine is abandoned, not killed — Go cannot preempt arbitrary code
	// — so variants should still be written to terminate.
	VariantTimeout time.Duration
	// Quarantine configures the per-variant failure circuit breaker; the
	// zero value disables it (no behaviour change relative to the
	// pre-fault-tolerance runtime).
	Quarantine QuarantinePolicy
	// Dispatch tunes the fast-path prediction tiers (memoization and the
	// compiled artifact); the zero value enables both with defaults.
	Dispatch DispatchPolicy
}

// DispatchPolicy configures the prediction tier ladder. The zero value is
// the recommended configuration: memoization on with the default cache size,
// compiled artifacts honoured when the installed model carries one. Both
// tiers are outcome-preserving by construction (the memo caches raw
// predictions only, the compiled tier falls back to the exact model near
// decision boundaries), so disabling them is a debugging aid, not a safety
// lever.
type DispatchPolicy struct {
	// DisableMemo turns off the feature-vector memoization cache.
	DisableMemo bool
	// MemoSize is the memo slot count, rounded up to a power of two
	// (default 1024).
	MemoSize int
	// DisableCompiled makes prediction always evaluate the exact classifier,
	// ignoring any compiled artifact installed on the model.
	DisableCompiled bool
}

// DefaultPolicy returns the paper's defaults: constraints on, serial
// synchronous feature evaluation.
func DefaultPolicy(name string) TuningPolicy {
	return TuningPolicy{Name: name, ConstraintsEnabled: true}
}

// VariantFn executes one code variant on an input and returns its
// optimization value. By the paper's convention the value is the time taken
// (here: simulated seconds), but any minimized criterion works.
type VariantFn[In any] func(In) float64

// ConstraintFn vetoes a variant for an input when it returns false.
type ConstraintFn[In any] func(In) bool

// Feature is one input-feature function with an optional evaluation-cost
// model (simulated seconds) used for overhead accounting (Fig. 8).
type Feature[In any] struct {
	Name string
	Eval func(In) float64
	Cost func(In) float64
}

type variantEntry[In any] struct {
	name        string
	fn          VariantFn[In]
	constraints []ConstraintFn[In]
	// br is this variant's quarantine circuit breaker, resolved from the
	// function's funcStats at registration (shared across CodeVariants bound
	// to the same function name). Consulted only when the policy enables
	// quarantining.
	br *breaker
	// cnt caches this variant's per-shard call counters from the shared
	// funcStats, so the record fast path skips the string-keyed perVariant
	// map after the first call on each shard.
	cnt [statsShards]atomic.Pointer[atomic.Int64]
}

// CodeVariant is the Go rendering of the paper's nitro::code_variant: a
// tunable function with registered variants, features and constraints.
//
// Register variants/features/constraints first, then share the CodeVariant
// freely: Call, FixInputs/CallFixed and CallConcurrent are safe for
// unlimited concurrent use (see the package comment for the full model).
// The variant, feature and constraint callbacks themselves must tolerate
// concurrent invocation when the CodeVariant is called concurrently.
type CodeVariant[In any] struct {
	cx       *Context
	policy   TuningPolicy
	variants []variantEntry[In]
	features []Feature[In]
	defIdx   int

	// model and stats are this function's cells in the context, resolved
	// once at construction so the Call hot path is a single atomic load away
	// from the model and a few atomic adds away from the statistics — no map
	// lookups, no locks.
	model *modelSlot
	stats *funcStats

	// memo is the feature-vector → raw-prediction cache (nil when the policy
	// disables it). Per CodeVariant, invalidated by epoch stamping on model
	// hot-swap and quarantine transitions; see memoCache.
	memo *memoCache

	// anyCost records whether any registered feature carries a Cost model;
	// when none does, the serial feature-eval path skips cost accounting
	// entirely (no costs slice, no per-feature nil checks).
	anyCost bool

	// observer is the optional adaptation hook (SetCallObserver): consulted
	// with one atomic load after every successful Call-path dispatch. Nil —
	// the default — keeps the runtime byte-identical to the pre-adaptation
	// behaviour.
	observer atomic.Pointer[CallObserver[In]]

	// tracer is the optional decision-trace collector (EnableTracing). Nil —
	// the default — costs the dispatch hot path exactly one atomic pointer
	// load; Off/Sampled/Always admission is the tracer's policy.
	tracer atomic.Pointer[obs.Tracer]
}

// New creates a tunable function bound to the context, mirroring
// code_variant's constructor.
func New[In any](cx *Context, policy TuningPolicy) *CodeVariant[In] {
	if cx == nil {
		cx = NewContext()
	}
	policy.Quarantine = policy.Quarantine.normalized()
	cv := &CodeVariant[In]{
		cx:     cx,
		policy: policy,
		defIdx: -1,
		model:  cx.slotFor(policy.Name),
		stats:  cx.statsFor(policy.Name),
	}
	if !policy.Dispatch.DisableMemo {
		cv.memo = newMemoCache(policy.Dispatch.MemoSize)
	}
	return cv
}

// Context returns the bound tuning context.
func (cv *CodeVariant[In]) Context() *Context { return cv.cx }

// Policy returns the tuning policy.
func (cv *CodeVariant[In]) Policy() TuningPolicy { return cv.policy }

// AddVariant registers a variant and returns its label index.
func (cv *CodeVariant[In]) AddVariant(name string, fn VariantFn[In]) int {
	cv.variants = append(cv.variants, variantEntry[In]{name: name, fn: fn, br: cv.stats.breakerFor(name)})
	if cv.defIdx < 0 {
		cv.defIdx = 0
	}
	cv.cx.noteShape(cv.policy.Name, len(cv.features), len(cv.variants))
	return len(cv.variants) - 1
}

// SetDefault marks the named variant as the preferred fallback used when no
// model is installed or a predicted variant is vetoed at deployment time.
func (cv *CodeVariant[In]) SetDefault(name string) error {
	for i := range cv.variants {
		if cv.variants[i].name == name {
			cv.defIdx = i
			return nil
		}
	}
	return fmt.Errorf("core: unknown variant %q", name)
}

// AddInputFeature registers a feature function.
func (cv *CodeVariant[In]) AddInputFeature(f Feature[In]) {
	cv.features = append(cv.features, f)
	if f.Cost != nil {
		cv.anyCost = true
	}
	cv.cx.noteShape(cv.policy.Name, len(cv.features), len(cv.variants))
}

// AddConstraint attaches a constraint to the named variant.
func (cv *CodeVariant[In]) AddConstraint(variant string, c ConstraintFn[In]) error {
	for i := range cv.variants {
		if cv.variants[i].name == variant {
			cv.variants[i].constraints = append(cv.variants[i].constraints, c)
			return nil
		}
	}
	return fmt.Errorf("core: unknown variant %q", variant)
}

// VariantNames returns the registered variant names in label order.
func (cv *CodeVariant[In]) VariantNames() []string {
	out := make([]string, len(cv.variants))
	for i := range cv.variants {
		out[i] = cv.variants[i].name
	}
	return out
}

// FeatureNames returns the registered feature names in vector order.
func (cv *CodeVariant[In]) FeatureNames() []string {
	out := make([]string, len(cv.features))
	for i, f := range cv.features {
		out[i] = f.Name
	}
	return out
}

// NumVariants returns the number of registered variants.
func (cv *CodeVariant[In]) NumVariants() int { return len(cv.variants) }

// Allowed reports whether variant idx passes its constraints on in (always
// true when the policy disables constraints).
func (cv *CodeVariant[In]) Allowed(idx int, in In) bool {
	if !cv.policy.ConstraintsEnabled {
		return true
	}
	for _, c := range cv.variants[idx].constraints {
		if !c(in) {
			return false
		}
	}
	return true
}

// evalFeatures computes the feature vector, honouring the parallel policy,
// and returns it with the modelled evaluation cost in seconds (the maximum
// over features when parallel, the sum when serial). The returned vector is
// freshly allocated; callers that may retain it (Fixed handles, observers)
// use this form.
func (cv *CodeVariant[In]) evalFeatures(in In) ([]float64, float64) {
	vec := make([]float64, len(cv.features))
	return vec, cv.evalFeaturesInto(in, vec)
}

// evalFeaturesInto is evalFeatures writing into a caller-provided vector (len
// == len(features)) — the allocation-free form the Call hot path uses with a
// pooled buffer.
func (cv *CodeVariant[In]) evalFeaturesInto(in In, vec []float64) float64 {
	if cv.policy.ParallelFeatureEval {
		costs := make([]float64, len(cv.features))
		var wg sync.WaitGroup
		for i := range cv.features {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				vec[i] = cv.features[i].Eval(in)
				if cv.features[i].Cost != nil {
					costs[i] = cv.features[i].Cost(in)
				}
			}(i)
		}
		wg.Wait()
		var maxC float64
		for _, c := range costs {
			if c > maxC {
				maxC = c
			}
		}
		return maxC
	}
	if !cv.anyCost {
		for i := range cv.features {
			vec[i] = cv.features[i].Eval(in)
		}
		return 0
	}
	var sum float64
	for i := range cv.features {
		vec[i] = cv.features[i].Eval(in)
		if cv.features[i].Cost != nil {
			sum += cv.features[i].Cost(in)
		}
	}
	return sum
}

// FeatureVector computes the feature vector synchronously and returns it
// with its modelled evaluation cost.
func (cv *CodeVariant[In]) FeatureVector(in In) ([]float64, float64) {
	return cv.evalFeatures(in)
}

// Fixed is a per-call future produced by FixInputs: the input it was created
// for plus the (possibly still evaluating) feature vector. Binding the input
// into the handle guarantees that feature evaluation, constraint checking
// and variant execution always agree on one input — the handle, not the
// CodeVariant, carries the async state, so any number of goroutines can hold
// independent Fixed handles on one shared CodeVariant.
//
// A Fixed handle is single-shot: consume it with CallFixed (or Fixed.Call)
// exactly once. The handle itself must not be shared between goroutines.
type Fixed[In any] struct {
	cv       *CodeVariant[In]
	in       In
	done     chan struct{} // non-nil iff evaluation runs in the background
	vec      []float64
	seconds  float64
	consumed atomic.Bool
}

// FixInputs mirrors the paper's fix_inputs, upgraded from implicit shared
// state to an explicit per-call future. With AsyncFeatureEval enabled it
// starts feature evaluation in the background so the caller can overlap
// other work before CallFixed; otherwise it evaluates eagerly on the calling
// goroutine. Either way the returned handle remembers in, so the subsequent
// CallFixed executes the selection on exactly the input the features were
// computed from.
func (cv *CodeVariant[In]) FixInputs(in In) *Fixed[In] {
	f := &Fixed[In]{cv: cv, in: in}
	if cv.policy.AsyncFeatureEval {
		f.done = make(chan struct{})
		go func() {
			f.vec, f.seconds = cv.evalFeatures(in)
			close(f.done)
		}()
		return f
	}
	f.vec, f.seconds = cv.evalFeatures(in)
	return f
}

// Input returns the input the handle was fixed on.
func (f *Fixed[In]) Input() In { return f.in }

// Features blocks until feature evaluation completes (the paper's implicit
// barrier) and returns the feature vector with its modelled evaluation cost.
func (f *Fixed[In]) Features() ([]float64, float64) {
	if f.done != nil {
		<-f.done
	}
	return f.vec, f.seconds
}

// Call consumes the handle: it waits for the features, selects and executes
// a variant on the fixed input, and records statistics. Equivalent to
// cv.CallFixed(f).
func (f *Fixed[In]) Call() (float64, string, error) {
	return f.cv.CallFixed(f)
}

// CallFixed consumes a handle produced by this CodeVariant's FixInputs: it
// waits for the feature vector (the implicit barrier), then selects,
// constraint-checks and executes a variant on the input bound into the
// handle. Under AsyncFeatureEval the feature cost is recorded as hidden
// (zero), because evaluation overlapped the caller's other work.
//
// Consuming a handle twice, or a handle from a different CodeVariant, is an
// error.
func (cv *CodeVariant[In]) CallFixed(f *Fixed[In]) (float64, string, error) {
	if f == nil {
		return 0, "", errors.New("core: CallFixed on nil handle")
	}
	if f.cv != cv {
		return 0, "", errors.New("core: CallFixed with a handle from a different code variant")
	}
	if f.consumed.Swap(true) {
		return 0, "", errors.New("core: Fixed handle already consumed")
	}
	vec, featSeconds := f.Features()
	if cv.policy.AsyncFeatureEval {
		featSeconds = 0 // hidden: evaluation overlapped other work
	}
	return cv.dispatch(context.Background(), f.in, vec, featSeconds)
}

// SelectIndex returns the variant label the selection engine would execute
// for in: the model's prediction when a model is installed and the predicted
// variant passes its constraints (and is not quarantined), otherwise the
// first available fallback (the default variant when its own constraints
// pass, else the lowest-indexed allowed variant). With quarantining enabled,
// quarantined variants are skipped; when every allowed variant is
// quarantined the chain is retried constraints-only as a last resort, since
// a quarantined variant may still succeed while selecting nothing cannot.
// The second result reports whether a fallback happened. When constraints
// veto every variant the index is -1 and the error is ErrAllVariantsVetoed.
func (cv *CodeVariant[In]) SelectIndex(in In, vec []float64) (int, bool, error) {
	idx, _, _, fellBack, _, err := cv.selectWithPred(in, vec, nil)
	return idx, fellBack, err
}

// predictVec runs the model prediction ladder for one feature vector: memo
// cache, then the model's own tiers (compiled artifact, exact classifier).
// It returns (-1, TierNone) without a model. The tier counter is recorded
// here — at prediction time — so memoized, compiled and exact predictions
// are counted exactly once each.
//
// Ordering invariant: both epochs are loaded BEFORE the model pointer; see
// memoCache for why the reverse order would be unsound under hot-swap.
//
// When a canary is installed, each call first draws whether the challenger
// serves it; canary-served predictions skip the memo cache in both
// directions (no stable-entry reads, no challenger stores) and return the
// cell so dispatch can account the outcome.
func (cv *CodeVariant[In]) predictVec(vec []float64) (int, ml.Tier, *canaryCell) {
	if cs := cv.model.canary.Load(); cs != nil && cs.admit() {
		pred, tier := cs.model.PredictTier(vec)
		cv.stats.recordTier(tier)
		return pred, tier, cs
	}
	var mEpoch, qEpoch, h uint64
	if cv.memo != nil {
		mEpoch = cv.model.epoch.Load()
		qEpoch = cv.stats.qEpoch.Load()
	}
	m := cv.model.p.Load()
	if m == nil {
		return -1, ml.TierNone, nil
	}
	if cv.memo != nil {
		h = memoHash(vec)
		if pred, ok := cv.memo.lookup(h, vec, mEpoch, qEpoch); ok {
			cv.stats.recordTier(ml.TierMemo)
			return pred, ml.TierMemo, nil
		}
	}
	var pred int
	tier := ml.TierExact
	if cv.policy.Dispatch.DisableCompiled {
		pred = m.PredictExact(vec)
	} else {
		pred, tier = m.PredictTier(vec)
	}
	if cv.memo != nil {
		cv.memo.store(h, vec, pred, mEpoch, qEpoch)
	}
	cv.stats.recordTier(tier)
	return pred, tier, nil
}

// selectWithPred is SelectIndex plus the model's raw prediction (-1 when no
// model is installed) and the tier that produced it — what the adaptation
// observer and the decision tracer need beyond the index. When pre is
// non-nil it carries a prediction the batched path already computed (and
// counted); selection consumes it instead of re-predicting.
func (cv *CodeVariant[In]) selectWithPred(in In, vec []float64, pre *prediction) (int, int, ml.Tier, bool, *canaryCell, error) {
	if len(cv.variants) == 0 {
		return -1, -1, ml.TierNone, false, nil, errNoVariants
	}
	var now int64
	if cv.policy.Quarantine.Enabled() {
		now = nowNanos()
	}
	var pred int
	var tier ml.Tier
	var cs *canaryCell
	if pre != nil {
		pred, tier, cs = pre.pred, pre.tier, pre.cs
	} else {
		pred, tier, cs = cv.predictVec(vec)
	}
	rawPred := pred
	if tier != ml.TierNone {
		if pred >= 0 && pred < len(cv.variants) && cv.selectable(pred, in, now) {
			return pred, rawPred, tier, false, cs, nil
		}
	}
	// Fallback chain: the default variant only if it passes its own
	// constraints (a vetoed default must never execute), then the first
	// allowed variant in registration order.
	if idx := cv.firstFallback(func(i int) bool { return cv.selectable(i, in, now) }); idx >= 0 {
		return idx, rawPred, tier, true, cs, nil
	}
	if cv.policy.Quarantine.Enabled() {
		// Everything allowed is quarantined: last resort, constraints only.
		if idx := cv.firstFallback(func(i int) bool { return cv.Allowed(i, in) }); idx >= 0 {
			return idx, rawPred, tier, true, cs, nil
		}
	}
	return -1, rawPred, tier, true, cs, ErrAllVariantsVetoed
}

// dispatchResult is the full outcome of one dispatch: what ran, whether
// selection fell back, and how many failure-driven fallback hops were taken —
// everything the decision tracer needs beyond the (value, name, err) triple
// the Call paths return.
type dispatchResult struct {
	value    float64
	idx      int
	name     string
	fellBack bool
	hops     int
	tier     ml.Tier
	err      error
}

// dispatch runs selection + execution + statistics on an already evaluated
// feature vector. Execution is fault-tolerant: the selected variant runs
// with panic isolation and an optional deadline, and on failure dispatch
// walks the fallback chain (score-ranked alternatives → default →
// registration order) before surfacing a typed error.
//
// When a tracer is installed and admits this call, the dispatch is wrapped in
// a DecisionTrace capture; the untraced path pays one atomic load.
func (cv *CodeVariant[In]) dispatch(ctx context.Context, in In, vec []float64, featSeconds float64) (float64, string, error) {
	return cv.dispatchPre(ctx, in, vec, featSeconds, nil)
}

// dispatchPre is dispatch with an optional precomputed prediction (the
// batched CallConcurrent path threads its per-input result through pre).
func (cv *CodeVariant[In]) dispatchPre(ctx context.Context, in In, vec []float64, featSeconds float64, pre *prediction) (float64, string, error) {
	if t := cv.tracer.Load(); t != nil && t.Admit() {
		return cv.dispatchTraced(ctx, t, in, vec, featSeconds, pre)
	}
	r := cv.dispatchRun(ctx, in, vec, featSeconds, pre)
	return r.value, r.name, r.err
}

// dispatchRun is the single dispatch implementation behind both the traced
// and untraced paths.
func (cv *CodeVariant[In]) dispatchRun(ctx context.Context, in In, vec []float64, featSeconds float64, pre *prediction) dispatchResult {
	idx, pred, tier, fellBack, cs, err := cv.selectWithPred(in, vec, pre)
	if err != nil {
		if cs != nil {
			cs.record(true)
		}
		return dispatchResult{idx: -1, fellBack: fellBack, tier: tier, err: err}
	}
	value, verr := cv.exec(ctx, idx, in, featSeconds, fellBack)
	if verr == nil {
		// A canary-served call that needed a selection fallback means the
		// challenger's pick was vetoed or quarantined: count it against the
		// challenger even though the fallback variant succeeded.
		if cs != nil {
			cs.record(fellBack)
		}
		cv.observe(in, vec, pred, idx, value, fellBack)
		return dispatchResult{value: value, idx: idx, name: cv.variants[idx].name, fellBack: fellBack, tier: tier}
	}
	var ve *VariantError
	if !errors.As(verr, &ve) {
		// Caller cancellation says nothing about the challenger: no canary
		// accounting either way.
		return dispatchResult{idx: -1, fellBack: fellBack, tier: tier, err: verr} // context cancellation: do not fall back
	}
	if cs != nil {
		cs.record(true)
	}
	value, cidx, hops, ferr := cv.dispatchFallback(ctx, in, vec, featSeconds, idx, pred, verr)
	r := dispatchResult{value: value, idx: cidx, fellBack: true, hops: hops, tier: tier, err: ferr}
	if cidx >= 0 && ferr == nil {
		r.name = cv.variants[cidx].name
	}
	return r
}

// Call is the paper's operator(): it evaluates the feature vector, selects a
// variant via the model with constraint fallback, executes it, records
// statistics, and returns the variant's value with the chosen variant name.
// Call is safe for unlimited concurrent use on one CodeVariant. It is
// exactly CallCtx with a background context.
func (cv *CodeVariant[In]) Call(in In) (float64, string, error) {
	return cv.CallCtx(context.Background(), in)
}

// CallCtx is Call with caller-controlled cancellation: a context that is
// cancelled before dispatch returns ctx.Err() immediately, and one cancelled
// mid-variant abandons the variant and returns ctx.Err() without walking the
// fallback chain (cancellation is the caller's choice, not a variant
// failure). With a background (never-cancelled) context it is byte-identical
// to Call in both results and recorded statistics.
func (cv *CodeVariant[In]) CallCtx(ctx context.Context, in In) (float64, string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return 0, "", err
	}
	if len(cv.variants) == 0 {
		return 0, "", errNoVariants
	}
	// The feature vector comes from a pool and is recycled after dispatch:
	// nothing downstream retains it (the memo tier and the tracer copy, and
	// the observer contract forbids retention), so the steady-state Call fast
	// path allocates nothing for features.
	vp := featVecPool.Get().(*[]float64)
	vec := *vp
	if cap(vec) < len(cv.features) {
		vec = make([]float64, len(cv.features))
	} else {
		vec = vec[:len(cv.features)]
	}
	featSeconds := cv.evalFeaturesInto(in, vec)
	value, name, err := cv.dispatch(ctx, in, vec, featSeconds)
	*vp = vec
	featVecPool.Put(vp)
	return value, name, err
}

// featVecPool recycles Call-path feature vectors. Fixed handles do NOT use
// it: Fixed.Features hands the vector to the caller, who may retain it.
var featVecPool = sync.Pool{New: func() any { return new([]float64) }}

// CallResult is one outcome of a batched dispatch.
type CallResult struct {
	Value   float64
	Variant string
	Err     error
}

// CallConcurrent dispatches every input through Call, fanning the batch out
// over at most par.Workers(parallelism) goroutines (0 = all cores,
// 1 = serial). Results land in input order regardless of scheduling. The
// per-input selection is independent, so throughput scales with cores as
// long as the variant/feature callbacks do. It is exactly CallConcurrentCtx
// with a background context.
func (cv *CodeVariant[In]) CallConcurrent(ins []In, parallelism int) []CallResult {
	return cv.CallConcurrentCtx(context.Background(), ins, parallelism)
}

// CallConcurrentCtx is CallConcurrent with caller-controlled cancellation:
// once ctx is cancelled no further inputs are dispatched, and every input
// that never ran carries ctx.Err() in its result slot. Inputs already in
// flight finish (or are abandoned by their own CallCtx per the cancellation
// rules). With a background context it is byte-identical to CallConcurrent.
//
// The batch is dispatched in three phases: feature evaluation fans out over
// the workers, then ONE batched prediction pass classifies every evaluated
// vector with shared scratch (memo lookups plus ml.Model.PredictAll — one
// scaler/kernel scratch for N vectors instead of N independent Predicts),
// then execution fans back out consuming the precomputed predictions.
// Per-input results are identical to N independent CallCtx calls: PredictAll
// is prediction-for-prediction equivalent to Predict, and constraints /
// quarantine are still checked per input at dispatch time.
func (cv *CodeVariant[In]) CallConcurrentCtx(ctx context.Context, ins []In, parallelism int) []CallResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]CallResult, len(ins))
	if len(ins) == 0 {
		return out
	}
	if len(cv.variants) == 0 {
		for i := range out {
			out[i].Err = errNoVariants
		}
		return out
	}
	workers := par.Workers(parallelism)

	// Phase 1: evaluate features for every input.
	vecs := make([][]float64, len(ins))
	secs := make([]float64, len(ins))
	cerr := par.ForCtx(ctx, len(ins), workers, func(i int) {
		vecs[i], secs[i] = cv.evalFeatures(ins[i])
	})

	// Phase 2: one batched prediction pass over the evaluated vectors
	// (vecs[i] stays nil for inputs phase 1 never reached).
	preds := cv.batchPredict(vecs)

	// Phase 3: dispatch each input, consuming its precomputed prediction.
	ran := make([]bool, len(ins))
	if cerr == nil {
		cerr = par.ForCtx(ctx, len(ins), workers, func(i int) {
			ran[i] = true
			out[i].Value, out[i].Variant, out[i].Err = cv.dispatchPre(ctx, ins[i], vecs[i], secs[i], preds[i])
		})
	}
	if cerr != nil {
		for i := range out {
			if !ran[i] {
				out[i].Err = cerr
			}
		}
	}
	return out
}

// batchPredict runs the prediction ladder over a batch of feature vectors
// (nil rows are skipped, yielding nil predictions that make dispatch predict
// on demand). Epochs are loaded before the model pointer, exactly like
// predictVec; the whole batch is stamped with one epoch pair, which mirrors
// the serial path's prediction-then-execution window under a racing
// hot-swap. Tier counters are recorded here, at prediction time.
func (cv *CodeVariant[In]) batchPredict(vecs [][]float64) []*prediction {
	preds := make([]*prediction, len(vecs))
	var mEpoch, qEpoch uint64
	if cv.memo != nil {
		mEpoch = cv.model.epoch.Load()
		qEpoch = cv.stats.qEpoch.Load()
	}
	m := cv.model.p.Load()
	canary := cv.model.canary.Load()
	if m == nil {
		return preds
	}
	store := make([]prediction, len(vecs))
	var missVecs [][]float64
	var missIdx []int
	for i, vec := range vecs {
		if vec == nil {
			continue
		}
		// Per-input canary draw, exactly like the serial path; canary-served
		// inputs bypass the memo cache in both directions.
		if canary != nil && canary.admit() {
			pred, tier := canary.model.PredictTier(vec)
			store[i] = prediction{pred: pred, tier: tier, cs: canary}
			preds[i] = &store[i]
			cv.stats.recordTier(tier)
			continue
		}
		if cv.memo != nil {
			if pred, ok := cv.memo.lookup(memoHash(vec), vec, mEpoch, qEpoch); ok {
				store[i] = prediction{pred: pred, tier: ml.TierMemo}
				preds[i] = &store[i]
				cv.stats.recordTier(ml.TierMemo)
				continue
			}
		}
		missVecs = append(missVecs, vec)
		missIdx = append(missIdx, i)
	}
	if len(missVecs) == 0 {
		return preds
	}
	var mp []int
	var mt []ml.Tier
	if cv.policy.Dispatch.DisableCompiled {
		mp = make([]int, len(missVecs))
		mt = make([]ml.Tier, len(missVecs))
		for j, vec := range missVecs {
			mp[j] = m.PredictExact(vec)
			mt[j] = ml.TierExact
		}
	} else {
		mp, mt = m.PredictAll(missVecs)
	}
	for j, i := range missIdx {
		store[i] = prediction{pred: mp[j], tier: mt[j]}
		preds[i] = &store[i]
		if cv.memo != nil {
			cv.memo.store(memoHash(vecs[i]), vecs[i], mp[j], mEpoch, qEpoch)
		}
		cv.stats.recordTier(mt[j])
	}
	return preds
}

// ExhaustiveSearch runs every variant on in (vetoed variants score +Inf, per
// the paper's training-phase convention) and returns the value vector with
// the argmin label. It is the oracle the autotuner labels training inputs
// with. When every variant is vetoed the best index is -1. It is exactly
// ExhaustiveSearchCtx with a background context.
func (cv *CodeVariant[In]) ExhaustiveSearch(in In) ([]float64, int) {
	return cv.ExhaustiveSearchCtx(context.Background(), in)
}

// ExhaustiveSearchCtx is ExhaustiveSearch with panic isolation and deadlines:
// each variant runs through the fault-tolerant execution path, and one that
// panics, aborts or times out scores +Inf — it is simply infeasible for this
// input, exactly like a constraint veto, so a single broken variant no longer
// aborts a whole training corpus. Context cancellation stops the sweep early
// (remaining variants score +Inf).
func (cv *CodeVariant[In]) ExhaustiveSearchCtx(ctx context.Context, in In) ([]float64, int) {
	if ctx == nil {
		ctx = context.Background()
	}
	values := make([]float64, len(cv.variants))
	best, bestV := -1, math.Inf(1)
	for i := range cv.variants {
		if !cv.Allowed(i, in) || ctx.Err() != nil {
			values[i] = math.Inf(1)
			continue
		}
		v, err := cv.runVariant(ctx, i, in)
		if err != nil {
			values[i] = math.Inf(1)
			continue
		}
		values[i] = v
		if values[i] < bestV {
			best, bestV = i, values[i]
		}
	}
	return values, best
}
