// Package core implements the Nitro library runtime — the paper's primary
// contribution. It provides the code_variant abstraction: a tunable function
// with registered variants, input-feature functions and per-variant
// constraints, plus the deployment-time selection engine that consults a
// trained model, enforces constraints (falling back to the default variant),
// and evaluates features in parallel or asynchronously (the paper's TBB
// optimizations, realized with goroutines).
//
// The generic parameter In is the tunable function's input type, mirroring
// the C++ template argument tuple of the original library.
package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"nitro/internal/ml"
)

// Context maintains the global state shared by all code variants in a
// program: the per-function trained models and call statistics. It mirrors
// the paper's nitro::context. A Context is safe for concurrent use.
type Context struct {
	mu     sync.Mutex
	models map[string]*ml.Model
	stats  map[string]*CallStats
}

// NewContext returns an empty tuning context.
func NewContext() *Context {
	return &Context{models: map[string]*ml.Model{}, stats: map[string]*CallStats{}}
}

// SetModel installs the trained model for the named tunable function.
func (cx *Context) SetModel(fn string, m *ml.Model) {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	cx.models[fn] = m
}

// Model returns the model for the named function, if one is installed.
func (cx *Context) Model(fn string) (*ml.Model, bool) {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	m, ok := cx.models[fn]
	return m, ok
}

// SaveModel persists the named function's model to a JSON file (the
// deployment artifact that replaces the paper's generated header + libSVM
// model pair).
func (cx *Context) SaveModel(fn, path string) error {
	m, ok := cx.Model(fn)
	if !ok {
		return fmt.Errorf("core: no model for %q", fn)
	}
	data, err := ml.MarshalModel(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads a model from a JSON file and installs it for fn.
func (cx *Context) LoadModel(fn, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := ml.UnmarshalModel(data)
	if err != nil {
		return err
	}
	cx.SetModel(fn, m)
	return nil
}

// CallStats aggregates deployment-time selection statistics for one tunable
// function.
type CallStats struct {
	Calls            int
	PerVariant       map[string]int
	DefaultFallbacks int
	TotalValue       float64
	FeatureSeconds   float64
}

// Stats returns a copy of the call statistics for fn.
func (cx *Context) Stats(fn string) CallStats {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	s := cx.stats[fn]
	if s == nil {
		return CallStats{PerVariant: map[string]int{}}
	}
	out := *s
	out.PerVariant = make(map[string]int, len(s.PerVariant))
	for k, v := range s.PerVariant {
		out.PerVariant[k] = v
	}
	return out
}

func (cx *Context) record(fn, variant string, value, featSeconds float64, fallback bool) {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	s := cx.stats[fn]
	if s == nil {
		s = &CallStats{PerVariant: map[string]int{}}
		cx.stats[fn] = s
	}
	s.Calls++
	s.PerVariant[variant]++
	s.TotalValue += value
	s.FeatureSeconds += featSeconds
	if fallback {
		s.DefaultFallbacks++
	}
}

// TuningPolicy carries the per-function options the paper's Python tuning
// script writes into the generated header.
type TuningPolicy struct {
	// Name identifies the tunable function; models are keyed by it.
	Name string
	// ParallelFeatureEval evaluates feature functions concurrently.
	ParallelFeatureEval bool
	// AsyncFeatureEval lets FixInputs start feature evaluation in the
	// background; Call then blocks on the result (the implicit barrier).
	AsyncFeatureEval bool
	// ConstraintsEnabled toggles deployment-time constraint checking.
	ConstraintsEnabled bool
}

// DefaultPolicy returns the paper's defaults: constraints on, serial
// synchronous feature evaluation.
func DefaultPolicy(name string) TuningPolicy {
	return TuningPolicy{Name: name, ConstraintsEnabled: true}
}

// VariantFn executes one code variant on an input and returns its
// optimization value. By the paper's convention the value is the time taken
// (here: simulated seconds), but any minimized criterion works.
type VariantFn[In any] func(In) float64

// ConstraintFn vetoes a variant for an input when it returns false.
type ConstraintFn[In any] func(In) bool

// Feature is one input-feature function with an optional evaluation-cost
// model (simulated seconds) used for overhead accounting (Fig. 8).
type Feature[In any] struct {
	Name string
	Eval func(In) float64
	Cost func(In) float64
}

type variantEntry[In any] struct {
	name        string
	fn          VariantFn[In]
	constraints []ConstraintFn[In]
}

// CodeVariant is the Go rendering of the paper's nitro::code_variant: a
// tunable function with registered variants, features and constraints.
// It is not safe for concurrent Call use with AsyncFeatureEval; guard
// externally or use one per goroutine.
type CodeVariant[In any] struct {
	cx       *Context
	policy   TuningPolicy
	variants []variantEntry[In]
	features []Feature[In]
	defIdx   int

	pending chan evaluated
	fixed   bool
}

type evaluated struct {
	vec     []float64
	seconds float64
}

// New creates a tunable function bound to the context, mirroring
// code_variant's constructor.
func New[In any](cx *Context, policy TuningPolicy) *CodeVariant[In] {
	if cx == nil {
		cx = NewContext()
	}
	return &CodeVariant[In]{cx: cx, policy: policy, defIdx: -1}
}

// Context returns the bound tuning context.
func (cv *CodeVariant[In]) Context() *Context { return cv.cx }

// Policy returns the tuning policy.
func (cv *CodeVariant[In]) Policy() TuningPolicy { return cv.policy }

// AddVariant registers a variant and returns its label index.
func (cv *CodeVariant[In]) AddVariant(name string, fn VariantFn[In]) int {
	cv.variants = append(cv.variants, variantEntry[In]{name: name, fn: fn})
	if cv.defIdx < 0 {
		cv.defIdx = 0
	}
	return len(cv.variants) - 1
}

// SetDefault marks the named variant as the fallback used when no model is
// installed or a predicted variant is vetoed at deployment time.
func (cv *CodeVariant[In]) SetDefault(name string) error {
	for i, v := range cv.variants {
		if v.name == name {
			cv.defIdx = i
			return nil
		}
	}
	return fmt.Errorf("core: unknown variant %q", name)
}

// AddInputFeature registers a feature function.
func (cv *CodeVariant[In]) AddInputFeature(f Feature[In]) {
	cv.features = append(cv.features, f)
}

// AddConstraint attaches a constraint to the named variant.
func (cv *CodeVariant[In]) AddConstraint(variant string, c ConstraintFn[In]) error {
	for i := range cv.variants {
		if cv.variants[i].name == variant {
			cv.variants[i].constraints = append(cv.variants[i].constraints, c)
			return nil
		}
	}
	return fmt.Errorf("core: unknown variant %q", variant)
}

// VariantNames returns the registered variant names in label order.
func (cv *CodeVariant[In]) VariantNames() []string {
	out := make([]string, len(cv.variants))
	for i, v := range cv.variants {
		out[i] = v.name
	}
	return out
}

// FeatureNames returns the registered feature names in vector order.
func (cv *CodeVariant[In]) FeatureNames() []string {
	out := make([]string, len(cv.features))
	for i, f := range cv.features {
		out[i] = f.Name
	}
	return out
}

// NumVariants returns the number of registered variants.
func (cv *CodeVariant[In]) NumVariants() int { return len(cv.variants) }

// Allowed reports whether variant idx passes its constraints on in (always
// true when the policy disables constraints).
func (cv *CodeVariant[In]) Allowed(idx int, in In) bool {
	if !cv.policy.ConstraintsEnabled {
		return true
	}
	for _, c := range cv.variants[idx].constraints {
		if !c(in) {
			return false
		}
	}
	return true
}

// evalFeatures computes the feature vector, honouring the parallel policy,
// and returns it with the modelled evaluation cost in seconds (the maximum
// over features when parallel, the sum when serial).
func (cv *CodeVariant[In]) evalFeatures(in In) ([]float64, float64) {
	vec := make([]float64, len(cv.features))
	costs := make([]float64, len(cv.features))
	if cv.policy.ParallelFeatureEval {
		var wg sync.WaitGroup
		for i := range cv.features {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				vec[i] = cv.features[i].Eval(in)
				if cv.features[i].Cost != nil {
					costs[i] = cv.features[i].Cost(in)
				}
			}(i)
		}
		wg.Wait()
		var maxC float64
		for _, c := range costs {
			if c > maxC {
				maxC = c
			}
		}
		return vec, maxC
	}
	var sum float64
	for i := range cv.features {
		vec[i] = cv.features[i].Eval(in)
		if cv.features[i].Cost != nil {
			sum += cv.features[i].Cost(in)
		}
	}
	return vec, sum
}

// FeatureVector computes the feature vector synchronously and returns it
// with its modelled evaluation cost.
func (cv *CodeVariant[In]) FeatureVector(in In) ([]float64, float64) {
	return cv.evalFeatures(in)
}

// FixInputs mirrors the paper's fix_inputs: with AsyncFeatureEval enabled it
// starts feature evaluation in the background so the caller can overlap
// other work; the next Call blocks on the result. Without the async policy
// it is a no-op.
func (cv *CodeVariant[In]) FixInputs(in In) {
	if !cv.policy.AsyncFeatureEval {
		return
	}
	ch := make(chan evaluated, 1)
	cv.pending = ch
	cv.fixed = true
	go func() {
		vec, cost := cv.evalFeatures(in)
		ch <- evaluated{vec: vec, seconds: cost}
	}()
}

// SelectIndex returns the variant label the selection engine would execute
// for in: the model's prediction when a model is installed and the predicted
// variant passes its constraints, otherwise the default variant. The second
// result reports whether a constraint/absence fallback happened.
func (cv *CodeVariant[In]) SelectIndex(in In, vec []float64) (int, bool) {
	if len(cv.variants) == 0 {
		return -1, false
	}
	model, ok := cv.cx.Model(cv.policy.Name)
	if !ok {
		return cv.defIdx, true
	}
	pred := model.Predict(vec)
	if pred < 0 || pred >= len(cv.variants) {
		return cv.defIdx, true
	}
	if !cv.Allowed(pred, in) {
		return cv.defIdx, true
	}
	return pred, false
}

// Call is the paper's operator(): it evaluates (or collects) the feature
// vector, selects a variant via the model with constraint fallback, executes
// it, records statistics, and returns the variant's value with the chosen
// variant name.
func (cv *CodeVariant[In]) Call(in In) (float64, string, error) {
	if len(cv.variants) == 0 {
		return 0, "", errors.New("core: no variants registered")
	}
	var vec []float64
	var featSeconds float64
	if cv.fixed && cv.pending != nil {
		ev := <-cv.pending // implicit barrier
		vec, featSeconds = ev.vec, 0
		cv.pending = nil
		cv.fixed = false
	} else {
		vec, featSeconds = cv.evalFeatures(in)
	}
	idx, fallback := cv.SelectIndex(in, vec)
	v := cv.variants[idx]
	value := v.fn(in)
	cv.cx.record(cv.policy.Name, v.name, value, featSeconds, fallback)
	return value, v.name, nil
}

// ExhaustiveSearch runs every variant on in (vetoed variants score +Inf, per
// the paper's training-phase convention) and returns the value vector with
// the argmin label. It is the oracle the autotuner labels training inputs
// with. When every variant is vetoed the best index is -1.
func (cv *CodeVariant[In]) ExhaustiveSearch(in In) ([]float64, int) {
	values := make([]float64, len(cv.variants))
	best, bestV := -1, math.Inf(1)
	for i, v := range cv.variants {
		if !cv.Allowed(i, in) {
			values[i] = math.Inf(1)
			continue
		}
		values[i] = v.fn(in)
		if values[i] < bestV {
			best, bestV = i, values[i]
		}
	}
	return values, best
}
