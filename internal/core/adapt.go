// Adaptation hooks: the deployment-runtime half of the online adaptation
// subsystem (internal/online). A CodeVariant can carry one CallObserver — an
// atomic pointer consulted after every successful Call-path dispatch — plus
// the exploration primitives (ObserveVariant, Selectable) an adaptation
// engine needs to re-time non-predicted variants on live inputs.
//
// The hooks are inert by default: with no observer installed the Call paths
// pay exactly one atomic load + nil check, record the same statistics, and
// return byte-identical results to the pre-adaptation runtime (test-asserted
// by the explore-rate-0 identity property in internal/online).
package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"nitro/internal/obs"
)

// CallObservation is what the runtime tells an installed CallObserver about
// one successful Call-path dispatch: the input, its feature vector, what the
// model predicted, what actually ran, and what it cost.
type CallObservation[In any] struct {
	// Input is the call's input value.
	Input In
	// Features is the evaluated feature vector (not a copy — observers must
	// not mutate it, and must not retain it past the callback: the Call fast
	// path recycles the buffer through a pool after dispatch. Copy it if you
	// need it later; internal/online's reservoir does).
	Features []float64
	// Predicted is the installed model's raw class prediction for Features,
	// or -1 when no model was installed.
	Predicted int
	// ChosenIdx / Chosen identify the variant that actually executed (after
	// constraint, quarantine and failure fallback).
	ChosenIdx int
	Chosen    string
	// Value is the executed variant's returned optimization value (by
	// convention, seconds).
	Value float64
	// FellBack reports whether selection fell back from the model's pick
	// (constraint veto, quarantine, missing model, or failure fallback).
	FellBack bool
}

// CallObserver receives one CallObservation per successful Call-path
// dispatch (Call, CallCtx, CallFixed, CallConcurrent). ObserveCall runs on
// the calling goroutine after statistics are recorded, so implementations
// must be safe for concurrent invocation and should return quickly on the
// non-sampled path.
type CallObserver[In any] interface {
	ObserveCall(CallObservation[In])
}

// SetCallObserver installs (or, with nil, removes) the CodeVariant's call
// observer. The swap is atomic: calls in flight keep the observer they
// already loaded. One observer per CodeVariant; installing replaces the
// previous one.
func (cv *CodeVariant[In]) SetCallObserver(o CallObserver[In]) {
	if o == nil {
		cv.observer.Store(nil)
		return
	}
	cv.observer.Store(&o)
}

// observe forwards one successful dispatch to the installed observer, if
// any. The unobserved fast path is a single atomic load.
func (cv *CodeVariant[In]) observe(in In, vec []float64, pred, chosen int, value float64, fellBack bool) {
	op := cv.observer.Load()
	if op == nil {
		return
	}
	(*op).ObserveCall(CallObservation[In]{
		Input:     in,
		Features:  vec,
		Predicted: pred,
		ChosenIdx: chosen,
		Chosen:    cv.variants[chosen].name,
		Value:     value,
		FellBack:  fellBack,
	})
}

// ObserveVariant executes variant idx on in for exploration: through the
// fault-tolerant execution path (panic isolation, VariantTimeout, breaker
// bookkeeping) but without touching the deployment call statistics — an
// exploration re-timing is not a served call. Failures feed the variant's
// quarantine breaker exactly like dispatch failures (variant health is
// global), and surface as the usual typed *VariantError.
func (cv *CodeVariant[In]) ObserveVariant(idx int, in In) (float64, error) {
	if idx < 0 || idx >= len(cv.variants) {
		return 0, fmt.Errorf("core: ObserveVariant index %d out of range [0, %d)", idx, len(cv.variants))
	}
	v := &cv.variants[idx]
	qOn := cv.policy.Quarantine.Enabled() && v.br != nil
	acq := brClosed
	if qOn {
		acq = v.br.acquire(nowNanos())
	}
	value, err := cv.runVariant(nil, idx, in)
	if err == nil {
		if qOn && v.br.onSuccess(acq) {
			cv.stats.recordRecovery()
		}
		return value, nil
	}
	if qOn && v.br.onFailure(acq, nowNanos(), cv.policy.Quarantine) {
		cv.stats.recordTrip()
	}
	return 0, err
}

// Selectable reports whether variant idx could be selected for in right now:
// its constraints pass and it is not quarantined. Adaptation engines use it
// to restrict exploration to variants dispatch itself would be willing to
// run.
func (cv *CodeVariant[In]) Selectable(idx int, in In) bool {
	if idx < 0 || idx >= len(cv.variants) {
		return false
	}
	var now int64
	if cv.policy.Quarantine.Enabled() {
		now = nowNanos()
	}
	return cv.selectable(idx, in, now)
}

// DefaultIndex returns the default variant's label index (-1 before any
// variant is registered).
func (cv *CodeVariant[In]) DefaultIndex() int { return cv.defIdx }

// ModelConfidence is the confidence-aware dispatch hook: the installed
// model's calibrated estimate (in [0,1]) that its prediction for vec names
// the truly fastest variant. Ensembles answer from their fitted reliability
// curve; single models fall back to a score-margin heuristic; no installed
// model reports 0 (nothing to trust). Adaptation engines call this only on
// sampled calls — the dispatch hot path never pays for it.
func (cx *Context) ModelConfidence(fn string, vec []float64) float64 {
	m, ok := cx.Model(fn)
	if !ok {
		return 0
	}
	return m.Confidence(vec)
}

// AdaptStats is a point-in-time snapshot of one adaptation engine's
// counters: how much it sampled and explored, what the drift detector saw,
// and how many retrains, hot-swaps and rollbacks it performed. Produced by
// internal/online's Engine.Stats; defined here next to CallStats so the two
// deployment-statistics snapshots live (and serialize) together.
type AdaptStats struct {
	// Calls counts dispatches seen by the observer hook.
	Calls int64
	// Sampled counts calls admitted by the rate limiter.
	Sampled int64
	// Explored counts sampled calls on which the epsilon-greedy budget spent
	// a full re-timing of the alternative variants.
	Explored int64
	// ExploreFailures counts variant failures during exploration re-timings.
	ExploreFailures int64
	// ExploreSeconds accumulates the optimization value (by convention,
	// seconds) spent re-timing alternatives — the exploration budget's cost.
	ExploreSeconds float64
	// Mismatches counts explored observations whose observed-best variant
	// differed from the model's prediction.
	Mismatches int64
	// Windows counts completed drift-detector windows.
	Windows int64
	// LastMismatchRate / LastRegret are the most recently closed window's
	// mismatch rate and mean relative regret.
	LastMismatchRate float64
	LastRegret       float64
	// Drifts counts sustained-drift detections (hysteresis satisfied).
	Drifts int64
	// Retrains counts background retraining runs started.
	Retrains int64
	// RetrainsDeferred counts drift windows where retraining was deferred
	// for lack of labelled samples.
	RetrainsDeferred int64
	// Swaps counts accepted candidates hot-swapped into the model slot.
	Swaps int64
	// Rollbacks counts candidates rejected on the holdout (incumbent kept).
	Rollbacks int64
	// ModelVersion is the stamped version of the currently installed model
	// (0 when unstamped or uninstalled).
	ModelVersion int
	// State is the drift state machine's current state ("healthy",
	// "drifting", "retraining" or "bakeoff").
	State string
	// Paused reports whether the engine is currently paused.
	Paused bool
	// BanditFlagged / BanditSkipped split the explore budget when a
	// contextual bandit routes exploration: flagged calls (low confidence or
	// unhealthy drift state) were re-timed bandit-directed, skipped calls
	// were trusted and paid nothing.
	BanditFlagged int64
	BanditSkipped int64
	// BanditPulls counts rewarded bandit arm pulls.
	BanditPulls int64
	// MeanConfidence is the running mean model confidence over sampled calls
	// (0 when the bandit router is disabled).
	MeanConfidence float64
	// Bakeoffs counts sequential challenger-vs-incumbent experiments started;
	// Promotes/Rejects/Timeouts split how they ended.
	Bakeoffs        int64
	BakeoffPromotes int64
	BakeoffRejects  int64
	BakeoffTimeouts int64
	// BakeoffSamples / BakeoffMean describe the in-flight experiment (paired
	// samples observed, running mean relative improvement); zero when idle.
	BakeoffSamples int64
	BakeoffMean    float64
}

// adaptStatsJSON fixes the wire field names of an AdaptStats snapshot, so
// external scrapers get a stable schema instead of reaching into struct
// fields.
type adaptStatsJSON struct {
	Calls            int64   `json:"calls"`
	Sampled          int64   `json:"sampled"`
	Explored         int64   `json:"explored"`
	ExploreFailures  int64   `json:"explore_failures"`
	ExploreSeconds   float64 `json:"explore_seconds"`
	Mismatches       int64   `json:"mismatches"`
	Windows          int64   `json:"windows"`
	LastMismatchRate float64 `json:"last_mismatch_rate"`
	LastRegret       float64 `json:"last_regret"`
	Drifts           int64   `json:"drifts"`
	Retrains         int64   `json:"retrains"`
	RetrainsDeferred int64   `json:"retrains_deferred"`
	Swaps            int64   `json:"swaps"`
	Rollbacks        int64   `json:"rollbacks"`
	ModelVersion     int     `json:"model_version"`
	State            string  `json:"state"`
	Paused           bool    `json:"paused"`
	BanditFlagged    int64   `json:"bandit_flagged,omitempty"`
	BanditSkipped    int64   `json:"bandit_skipped,omitempty"`
	BanditPulls      int64   `json:"bandit_pulls,omitempty"`
	MeanConfidence   float64 `json:"mean_confidence,omitempty"`
	Bakeoffs         int64   `json:"bakeoffs,omitempty"`
	BakeoffPromotes  int64   `json:"bakeoff_promotes,omitempty"`
	BakeoffRejects   int64   `json:"bakeoff_rejects,omitempty"`
	BakeoffTimeouts  int64   `json:"bakeoff_timeouts,omitempty"`
	BakeoffSamples   int64   `json:"bakeoff_samples,omitempty"`
	BakeoffMean      float64 `json:"bakeoff_mean,omitempty"`
}

// MarshalJSON serializes the snapshot with stable snake_case field names.
func (s AdaptStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(adaptStatsJSON(s))
}

// UnmarshalJSON accepts the MarshalJSON wire form.
func (s *AdaptStats) UnmarshalJSON(data []byte) error {
	var j adaptStatsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = AdaptStats(j)
	return nil
}

// String renders a one-line human-readable snapshot.
func (s AdaptStats) String() string {
	return fmt.Sprintf(
		"adapt: state=%s v%d calls=%d sampled=%d explored=%d mismatch=%.1f%% regret=%.3f windows=%d drifts=%d retrains=%d swaps=%d rollbacks=%d",
		s.State, s.ModelVersion, s.Calls, s.Sampled, s.Explored,
		100*s.LastMismatchRate, s.LastRegret, s.Windows, s.Drifts, s.Retrains, s.Swaps, s.Rollbacks)
}

// callStatsJSON fixes CallStats's wire field names (see adaptStatsJSON).
type callStatsJSON struct {
	Calls            int                           `json:"calls"`
	PerVariant       map[string]int                `json:"per_variant"`
	DefaultFallbacks int                           `json:"default_fallbacks"`
	TotalValue       float64                       `json:"total_value"`
	FeatureSeconds   float64                       `json:"feature_seconds"`
	Panics           int                           `json:"panics"`
	Timeouts         int                           `json:"timeouts"`
	Fallbacks        int                           `json:"fallbacks"`
	Quarantined      int                           `json:"quarantined"`
	Recoveries       int                           `json:"recoveries"`
	MemoHits         int                           `json:"memo_hits"`
	CompiledHits     int                           `json:"compiled_hits"`
	ExactFallbacks   int                           `json:"exact_fallbacks"`
	Latency          map[string]obs.LatencySummary `json:"latency,omitempty"`
}

// MarshalJSON serializes the snapshot with stable snake_case field names
// (map keys sort, so the output is deterministic).
func (s CallStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(callStatsJSON(s))
}

// UnmarshalJSON accepts the MarshalJSON wire form.
func (s *CallStats) UnmarshalJSON(data []byte) error {
	var j callStatsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = CallStats(j)
	return nil
}

// String renders a one-line human-readable snapshot.
func (s CallStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calls: %d (fallbacks=%d value=%.4g featsecs=%.4g", s.Calls, s.DefaultFallbacks, s.TotalValue, s.FeatureSeconds)
	if s.Panics+s.Timeouts+s.Fallbacks+s.Quarantined+s.Recoveries > 0 {
		fmt.Fprintf(&b, " panics=%d timeouts=%d failhops=%d trips=%d recoveries=%d",
			s.Panics, s.Timeouts, s.Fallbacks, s.Quarantined, s.Recoveries)
	}
	if s.MemoHits+s.CompiledHits+s.ExactFallbacks > 0 {
		fmt.Fprintf(&b, " memo=%d compiled=%d exact=%d", s.MemoHits, s.CompiledHits, s.ExactFallbacks)
	}
	b.WriteString(")")
	return b.String()
}
