package core

// Canary-slot tests: fraction-gated challenger serving through the dispatch
// ladder, outcome accounting (selection fallback and variant failure count
// against the challenger), memo-cache isolation, and a -race stress mixing
// canary installs/clears with live traffic and stable hot-swaps.

import (
	"math"
	"sync"
	"testing"
)

// TestCanaryFractionOneServesChallenger: with fraction 1 every call is
// served by the challenger; with fraction 0 none is.
func TestCanaryFractionOneServesChallenger(t *testing.T) {
	cv, _ := buildConcurrentCV(t, DefaultPolicy("canary"))
	cx := cv.Context()
	// Challenger predicts class 1 ("large") for everything; the stable model
	// picks "small" for X below the 4.5 boundary.
	if err := cx.SetCanary("canary", singleClassModel(t, 1), 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		_, name, err := cv.Call(testInput{X: 1})
		if err != nil || name != "large" {
			t.Fatalf("canary call %d: (%q, %v), want challenger pick large", i, name, err)
		}
	}
	st := cx.CanaryStats("canary")
	if !st.Active || st.Calls != 6 || st.Failures != 0 || st.Fraction != 1 {
		t.Fatalf("canary stats = %+v, want 6 clean calls at fraction 1", st)
	}

	cx.ClearCanary("canary")
	if _, name, err := cv.Call(testInput{X: 1}); err != nil || name != "small" {
		t.Fatalf("after ClearCanary: (%q, %v), want stable pick small", name, err)
	}
	if st := cx.CanaryStats("canary"); st.Active {
		t.Fatalf("stats still active after clear: %+v", st)
	}

	if err := cx.SetCanary("canary", singleClassModel(t, 1), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, name, _ := cv.Call(testInput{X: 1}); name != "small" {
			t.Fatalf("fraction-0 canary served traffic (call %d chose %q)", i, name)
		}
	}
	if st := cx.CanaryStats("canary"); st.Calls != 0 {
		t.Fatalf("fraction-0 canary recorded %d calls", st.Calls)
	}
}

// TestCanaryFailureAccounting: a challenger that picks a panicking variant
// has its calls counted as failures, while the runtime's fallback machinery
// still serves every call.
func TestCanaryFailureAccounting(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("boom"))
	cv.AddVariant("ok", func(in testInput) float64 { return 1 })
	cv.AddVariant("boom", func(in testInput) float64 { panic("injected") })
	if err := cv.SetDefault("ok"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})
	// Stable model picks "ok"; challenger picks the panicking variant.
	if err := cx.SetModel("boom", singleClassModel(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := cx.SetCanary("boom", singleClassModel(t, 1), 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, name, err := cv.Call(testInput{X: float64(i)})
		if err != nil || name != "ok" {
			t.Fatalf("call %d: (%q, %v), want fallback to ok", i, name, err)
		}
	}
	st := cx.CanaryStats("boom")
	if st.Calls != 5 || st.Failures != 5 {
		t.Fatalf("canary stats = %+v, want 5/5 failures for a panicking challenger", st)
	}
}

// TestCanaryVetoCountsAsFailure: a challenger pick vetoed by constraints
// falls back and counts against the challenger.
func TestCanaryVetoCountsAsFailure(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("veto"))
	cv.AddVariant("ok", func(in testInput) float64 { return 1 })
	cv.AddVariant("never", func(in testInput) float64 { return 2 })
	if err := cv.SetDefault("ok"); err != nil {
		t.Fatal(err)
	}
	if err := cv.AddConstraint("never", func(testInput) bool { return false }); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})
	if err := cx.SetModel("veto", singleClassModel(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := cx.SetCanary("veto", singleClassModel(t, 1), 1.0); err != nil {
		t.Fatal(err)
	}
	if _, name, err := cv.Call(testInput{X: 2}); err != nil || name != "ok" {
		t.Fatalf("vetoed challenger pick: (%q, %v), want fallback ok", name, err)
	}
	st := cx.CanaryStats("veto")
	if st.Calls != 1 || st.Failures != 1 {
		t.Fatalf("canary stats = %+v, want the vetoed pick counted as a failure", st)
	}
}

// TestCanaryDoesNotPoisonMemo: challenger predictions must never enter the
// memo cache, and stable entries must survive a canary install/clear cycle
// (no epoch bump).
func TestCanaryDoesNotPoisonMemo(t *testing.T) {
	cv, _ := buildConcurrentCV(t, DefaultPolicy("memo"))
	cx := cv.Context()
	in := testInput{X: 1}
	// Warm the memo with the stable model's prediction.
	for i := 0; i < 2; i++ {
		if _, name, _ := cv.Call(in); name != "small" {
			t.Fatalf("warmup call chose %q", name)
		}
	}
	base := cx.Stats("memo")
	if base.MemoHits != 1 {
		t.Fatalf("warmup: %d memo hits, want 1", base.MemoHits)
	}
	// Serve the same input through a fraction-1 challenger: different pick,
	// no memo interaction.
	if err := cx.SetCanary("memo", singleClassModel(t, 1), 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, name, _ := cv.Call(in); name != "large" {
			t.Fatalf("canary call chose %q", name)
		}
	}
	mid := cx.Stats("memo")
	if mid.MemoHits != base.MemoHits {
		t.Fatalf("canary-served calls hit the memo (%d -> %d)", base.MemoHits, mid.MemoHits)
	}
	// Clearing the canary must bring back the stable pick *from the memo*:
	// the cached entry survived because no epoch moved.
	cx.ClearCanary("memo")
	if _, name, _ := cv.Call(in); name != "small" {
		t.Fatalf("post-clear call chose %q, want stable memoized small", name)
	}
	post := cx.Stats("memo")
	if post.MemoHits != mid.MemoHits+1 {
		t.Fatalf("stable memo entry did not survive the canary cycle (%d -> %d hits)", mid.MemoHits, post.MemoHits)
	}
}

// TestCanaryBatchedMatchesSerial: CallConcurrent with a fraction-1 canary
// serves every input with the challenger, exactly like serial calls.
func TestCanaryBatchedMatchesSerial(t *testing.T) {
	cv, _ := buildConcurrentCV(t, DefaultPolicy("batch"))
	cx := cv.Context()
	if err := cx.SetCanary("batch", singleClassModel(t, 1), 1.0); err != nil {
		t.Fatal(err)
	}
	ins := make([]testInput, 16)
	for i := range ins {
		ins[i] = testInput{X: float64(i % 4)}
	}
	for _, r := range cv.CallConcurrent(ins, 4) {
		if r.Err != nil || r.Variant != "large" {
			t.Fatalf("batched canary result: (%q, %v), want large", r.Variant, r.Err)
		}
	}
	st := cx.CanaryStats("batch")
	if st.Calls != int64(len(ins)) || st.Failures != 0 {
		t.Fatalf("canary stats = %+v, want %d clean calls", st, len(ins))
	}
}

// TestSetCanaryValidates: canary installs run the same structural validation
// as SetModel.
func TestSetCanaryValidates(t *testing.T) {
	cv, _ := buildConcurrentCV(t, DefaultPolicy("val"))
	cx := cv.Context()
	if err := cx.SetCanary("val", nil, 0.5); err == nil {
		t.Fatal("nil challenger accepted")
	}
	// A model whose class labels exceed the registered variant count must be
	// rejected (same check as SetModel).
	if err := cx.SetCanary("val", singleClassModel(t, 7), 0.5); err == nil {
		t.Fatal("out-of-range challenger accepted")
	}
	if st := cx.CanaryStats("val"); st.Active {
		t.Fatalf("rejected install left a canary behind: %+v", st)
	}
	// Fractions clamp to [0, 1].
	if err := cx.SetCanary("val", singleClassModel(t, 1), 7); err != nil {
		t.Fatal(err)
	}
	if st := cx.CanaryStats("val"); st.Fraction != 1 {
		t.Fatalf("fraction not clamped: %+v", st)
	}
	if err := cx.SetCanary("val", singleClassModel(t, 1), math.Inf(-1)); err != nil {
		t.Fatal(err)
	}
	if st := cx.CanaryStats("val"); st.Fraction != 0 {
		t.Fatalf("negative fraction not clamped: %+v", st)
	}
	_ = cv
}

// TestCanarySwapStress exercises canary install/clear and stable hot-swap
// under concurrent traffic; -race polices publication, the assertions police
// that every call still succeeds and picks a registered variant.
func TestCanarySwapStress(t *testing.T) {
	cv, model := buildConcurrentCV(t, DefaultPolicy("cstress"))
	cx := cv.Context()
	challenger := singleClassModel(t, 1)

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case g == 0 && i%3 == 0:
					if err := cx.SetCanary("cstress", challenger, 0.5); err != nil {
						t.Error(err)
					}
				case g == 0 && i%3 == 1:
					cx.ClearCanary("cstress")
				case g == 1 && i%5 == 0:
					if err := cx.SetModel("cstress", model); err != nil {
						t.Error(err)
					}
				default:
					_, name, err := cv.Call(testInput{X: float64(i % 9)})
					if err != nil {
						t.Errorf("call: %v", err)
					} else if name != "small" && name != "large" {
						t.Errorf("call chose unregistered variant %q", name)
					}
					cx.CanaryStats("cstress")
				}
			}
		}(g)
	}
	wg.Wait()
}
