package core

import (
	"context"
	"errors"
	"math"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nitro/internal/ml"
)

// --- panic isolation -------------------------------------------------------

func TestPanicIsolationFallsBack(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("panic"))
	cv.AddVariant("broken", func(in testInput) float64 { panic("kaboom") })
	cv.AddVariant("good", func(in testInput) float64 { return 2 })
	// Default is "broken": every call hits the panic first.
	v, name, err := cv.Call(testInput{X: 1})
	if err != nil {
		t.Fatalf("Call error: %v", err)
	}
	if name != "good" || v != 2 {
		t.Fatalf("got (%v, %q), want (2, good)", v, name)
	}
	st := cx.Stats("panic")
	if st.Panics != 1 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want Panics=1 Fallbacks=1", st)
	}
	if st.Calls != 1 || st.PerVariant["good"] != 1 {
		t.Fatalf("stats = %+v, want 1 successful call on good", st)
	}
}

func TestAllVariantsPanicYieldsTypedError(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("allpanic"))
	cv.AddVariant("a", func(in testInput) float64 { panic("a down") })
	cv.AddVariant("b", func(in testInput) float64 { panic("b down") })
	_, _, err := cv.Call(testInput{X: 1})
	var ve *VariantError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VariantError, got %T: %v", err, err)
	}
	if !ve.Panicked {
		t.Fatalf("want Panicked=true, got %+v", ve)
	}
	st := cx.Stats("allpanic")
	if st.Panics != 2 || st.Calls != 0 {
		t.Fatalf("stats = %+v, want Panics=2 Calls=0", st)
	}
}

func TestAbortSurfacesCause(t *testing.T) {
	sentinel := errors.New("cannot handle this input")
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("abort"))
	cv.AddVariant("picky", func(in testInput) float64 { Abort(sentinel); return 0 })
	_, _, err := cv.Call(testInput{X: 1})
	var ve *VariantError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VariantError, got %T: %v", err, err)
	}
	if ve.Panicked {
		t.Fatalf("Abort must not count as a panic: %+v", ve)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through the envelope failed: %v", err)
	}
	if st := cx.Stats("abort"); st.Panics != 0 {
		t.Fatalf("Abort must not bump Panics: %+v", st)
	}
}

// --- deadlines & cancellation ---------------------------------------------

func TestVariantTimeoutFallsBack(t *testing.T) {
	p := DefaultPolicy("timeout")
	p.VariantTimeout = 5 * time.Millisecond
	cx := NewContext()
	cv := New[testInput](cx, p)
	cv.AddVariant("hung", func(in testInput) float64 { time.Sleep(200 * time.Millisecond); return 1 })
	cv.AddVariant("fast", func(in testInput) float64 { return 2 })
	v, name, err := cv.Call(testInput{X: 1})
	if err != nil || name != "fast" || v != 2 {
		t.Fatalf("got (%v, %q, %v), want (2, fast, nil)", v, name, err)
	}
	st := cx.Stats("timeout")
	if st.Timeouts != 1 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want Timeouts=1 Fallbacks=1", st)
	}
}

func TestVariantTimeoutTypedError(t *testing.T) {
	p := DefaultPolicy("timeout2")
	p.VariantTimeout = 5 * time.Millisecond
	cv := New[testInput](NewContext(), p)
	cv.AddVariant("hung", func(in testInput) float64 { time.Sleep(200 * time.Millisecond); return 1 })
	_, _, err := cv.Call(testInput{X: 1})
	if !errors.Is(err, ErrVariantTimeout) {
		t.Fatalf("want ErrVariantTimeout, got %v", err)
	}
	var ve *VariantError
	if !errors.As(err, &ve) || ve.Variant != "hung" {
		t.Fatalf("want VariantError{Variant: hung}, got %v", err)
	}
}

func TestCallCtxCancelledBeforeDispatch(t *testing.T) {
	cv := newCV(t, DefaultPolicy("cancel"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := cv.CallCtx(ctx, testInput{X: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if st := cv.Context().Stats("cancel"); st.Calls != 0 {
		t.Fatalf("cancelled call must not record: %+v", st)
	}
}

func TestCallCtxCancelledMidVariant(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("midcancel"))
	started := make(chan struct{})
	block := make(chan struct{})
	cv.AddVariant("blocking", func(in testInput) float64 { close(started); <-block; return 1 })
	cv.AddVariant("other", func(in testInput) float64 { return 2 })
	defer close(block)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-started; cancel() }()
	_, _, err := cv.CallCtx(ctx, testInput{X: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var ve *VariantError
	if errors.As(err, &ve) {
		t.Fatalf("cancellation must not be a VariantError: %v", err)
	}
	// Cancellation is the caller's choice: no fallback, no failure counters.
	st := cx.Stats("midcancel")
	if st.Fallbacks != 0 || st.Panics != 0 || st.Timeouts != 0 {
		t.Fatalf("cancellation charged failure counters: %+v", st)
	}
}

// --- failure-aware fallback chain -----------------------------------------

// threeCV builds a three-variant function with a trained 3-class model:
// label 0 for x<3, 1 for 3<=x<6, 2 for x>=6. Default is v0.
func threeCV(t *testing.T, name string, fns map[int]VariantFn[testInput]) (*CodeVariant[testInput], *ml.Model) {
	t.Helper()
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy(name))
	for i, vn := range []string{"v0", "v1", "v2"} {
		fn := fns[i]
		if fn == nil {
			val := float64(i)
			fn = func(in testInput) float64 { return val }
		}
		cv.AddVariant(vn, fn)
	}
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})
	ds := &ml.Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		switch {
		case x >= 6:
			label = 2
		case x >= 3:
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	model := &ml.Model{Classifier: svm, Scaler: scaler}
	if err := cx.SetModel(name, model); err != nil {
		t.Fatal(err)
	}
	return cv, model
}

func TestFallbackPrefersNextRankedOverDefault(t *testing.T) {
	in := testInput{X: 7} // predicted class 2; nearest alternative by score is 1
	cv, model := threeCV(t, "ranked", map[int]VariantFn[testInput]{
		2: func(testInput) float64 { panic("v2 down") },
	})
	ranked := model.RankedClasses([]float64{in.X})
	if ranked[0] != 2 {
		t.Fatalf("precondition: model should predict 2 for x=7, ranked %v", ranked)
	}
	if ranked[1] != 1 {
		t.Fatalf("precondition: next-ranked should be 1 (not the default 0), ranked %v", ranked)
	}
	v, name, err := cv.Call(in)
	if err != nil {
		t.Fatalf("Call error: %v", err)
	}
	if name != "v1" || v != 1 {
		t.Fatalf("fallback chose (%v, %q), want the next-ranked (1, v1), ranked %v", v, name, ranked)
	}
}

func TestRankedClassesHeadMatchesPredict(t *testing.T) {
	_, model := threeCV(t, "rankhead", nil)
	for x := 0.0; x <= 9; x += 0.5 {
		ranked := model.RankedClasses([]float64{x})
		if len(ranked) != 3 {
			t.Fatalf("x=%v: ranked %v, want 3 classes", x, ranked)
		}
		if pred := model.Predict([]float64{x}); ranked[0] != pred {
			t.Fatalf("x=%v: ranked[0]=%d != Predict=%d", x, ranked[0], pred)
		}
	}
}

func TestFallbackRespectsConstraints(t *testing.T) {
	cv, _ := threeCV(t, "fbcons", map[int]VariantFn[testInput]{
		2: func(testInput) float64 { panic("v2 down") },
	})
	// Veto v1 so the chain must skip the next-ranked candidate and land on v0.
	if err := cv.AddConstraint("v1", func(testInput) bool { return false }); err != nil {
		t.Fatal(err)
	}
	v, name, err := cv.Call(testInput{X: 7})
	if err != nil {
		t.Fatalf("Call error: %v", err)
	}
	if name != "v0" || v != 0 {
		t.Fatalf("got (%v, %q), want the default (0, v0)", v, name)
	}
}

// --- quarantine circuit breaker -------------------------------------------

func TestQuarantineTripsAndRecovers(t *testing.T) {
	p := DefaultPolicy("quarantine")
	p.Quarantine = QuarantinePolicy{Threshold: 3, Window: time.Minute, Cooldown: 20 * time.Millisecond}
	cx := NewContext()
	cv := New[testInput](cx, p)
	var failing atomic.Bool
	failing.Store(true)
	cv.AddVariant("flaky", func(in testInput) float64 {
		if failing.Load() {
			panic("flaky down")
		}
		return 1
	})
	cv.AddVariant("steady", func(in testInput) float64 { return 2 })
	// Default is flaky: selection prefers it until the breaker opens.
	for i := 0; i < 3; i++ {
		if _, name, err := cv.Call(testInput{X: 1}); err != nil || name != "steady" {
			t.Fatalf("call %d: got (%q, %v), want steady via fallback", i, name, err)
		}
	}
	st := cx.Stats("quarantine")
	if st.Quarantined != 1 {
		t.Fatalf("after 3 failures stats = %+v, want Quarantined=1", st)
	}
	if st.Panics != 3 {
		t.Fatalf("stats = %+v, want Panics=3", st)
	}
	// While quarantined, selection skips flaky entirely: no new panics.
	if _, name, err := cv.Call(testInput{X: 1}); err != nil || name != "steady" {
		t.Fatalf("quarantined call: got (%q, %v), want steady", name, err)
	}
	if st = cx.Stats("quarantine"); st.Panics != 3 {
		t.Fatalf("quarantined variant still executed: %+v", st)
	}
	// Heal the variant, wait out the cooldown, and watch the half-open probe
	// readmit it.
	failing.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		_, name, err := cv.Call(testInput{X: 1})
		if err != nil {
			t.Fatalf("recovery call error: %v", err)
		}
		if name == "flaky" {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("variant never recovered from quarantine")
	}
	if st = cx.Stats("quarantine"); st.Recoveries < 1 {
		t.Fatalf("stats = %+v, want Recoveries >= 1", st)
	}
}

func TestQuarantineDisabledByDefault(t *testing.T) {
	cv := newCV(t, DefaultPolicy("noq"))
	if cv.Policy().Quarantine.Enabled() {
		t.Fatal("zero-value policy must not quarantine")
	}
}

// --- fault-injection harness ----------------------------------------------

func TestWrapFaultSeededDeterminism(t *testing.T) {
	cfg := FaultConfig{PanicRate: 0.3, ErrorRate: 0.2, DelayRate: 0, Seed: 42}
	outcomes := func() []string {
		fn := WrapFault(func(in testInput) float64 { return 1 }, cfg)
		var out []string
		for i := 0; i < 50; i++ {
			out = append(out, func() (res string) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(variantAbort); ok {
							res = "abort"
						} else {
							res = "panic"
						}
					}
				}()
				fn(testInput{})
				return "ok"
			}())
		}
		return out
	}
	a, b := outcomes(), outcomes()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different fault sequences:\n%v\n%v", a, b)
	}
	counts := map[string]int{}
	for _, o := range a {
		counts[o]++
	}
	if counts["panic"] == 0 || counts["abort"] == 0 || counts["ok"] == 0 {
		t.Fatalf("expected a mix of outcomes, got %v", counts)
	}
}

// TestStressFaultInjection is the acceptance stress test: one variant with a
// 15% panic rate and a 10% hang rate (30ms sleeps against a 5ms deadline)
// serves concurrent traffic under -race. Every call must resolve via the
// fallback chain or a typed error, the faulty variant must observably
// quarantine, and after the faults stop it must recover.
func TestStressFaultInjection(t *testing.T) {
	p := DefaultPolicy("stress")
	p.VariantTimeout = 5 * time.Millisecond
	p.Quarantine = QuarantinePolicy{Threshold: 5, Window: time.Second, Cooldown: 20 * time.Millisecond}
	cx := NewContext()
	cv := New[testInput](cx, p)
	var faultsOn atomic.Bool
	faultsOn.Store(true)
	base := func(in testInput) float64 { return 1 }
	faulty := WrapFault(base, FaultConfig{PanicRate: 0.15, DelayRate: 0.10, Delay: 30 * time.Millisecond, Seed: 7})
	cv.AddVariant("faulty", func(in testInput) float64 {
		if faultsOn.Load() {
			return faulty(in)
		}
		return base(in)
	})
	cv.AddVariant("healthy", func(in testInput) float64 { return 2 })
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, _, err := cv.CallCtx(context.Background(), testInput{X: float64(i % 10)})
				if err != nil {
					var ve *VariantError
					if !errors.As(err, &ve) && !errors.Is(err, ErrAllVariantsVetoed) {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("untyped error escaped the dispatch layer: %v", err)
	}
	st := cx.Stats("stress")
	if st.Panics == 0 {
		t.Fatalf("stats = %+v, want injected panics", st)
	}
	if st.Timeouts == 0 {
		t.Fatalf("stats = %+v, want injected timeouts", st)
	}
	if st.Quarantined < 1 {
		t.Fatalf("stats = %+v, want the faulty variant quarantined at least once", st)
	}
	if st.Fallbacks == 0 {
		t.Fatalf("stats = %+v, want failure fallback hops", st)
	}

	// Phase 2: stop injecting, wait out the cooldown, and verify recovery.
	faultsOn.Store(false)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		if _, _, err := cv.Call(testInput{X: 1}); err != nil {
			t.Fatalf("post-fault call error: %v", err)
		}
		if cx.Stats("stress").Recoveries >= 1 {
			break
		}
	}
	st = cx.Stats("stress")
	if st.Recoveries < 1 {
		t.Fatalf("stats = %+v, want the faulty variant to recover after faults stop", st)
	}
}

// --- determinism -----------------------------------------------------------

// statsEquivalent compares two CallStats snapshots: integer counters and the
// per-variant map must match exactly; the float sums (TotalValue,
// FeatureSeconds) are compared with a tiny relative tolerance because the
// random shard assignment makes their accumulation order run-dependent (a
// property of any two runs, not of the Ctx entry points).
func statsEquivalent(a, b CallStats) bool {
	approx := func(x, y float64) bool {
		if x == y {
			return true
		}
		d := math.Abs(x - y)
		return d <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
	}
	return a.Calls == b.Calls && a.DefaultFallbacks == b.DefaultFallbacks &&
		a.Panics == b.Panics && a.Timeouts == b.Timeouts && a.Fallbacks == b.Fallbacks &&
		a.Quarantined == b.Quarantined && a.Recoveries == b.Recoveries &&
		reflect.DeepEqual(a.PerVariant, b.PerVariant) &&
		approx(a.TotalValue, b.TotalValue) && approx(a.FeatureSeconds, b.FeatureSeconds)
}

func TestCallCtxMatchesCall(t *testing.T) {
	mk := func() *CodeVariant[testInput] {
		cv := newCV(t, DefaultPolicy("det-ctx"))
		trainToy(t, cv)
		return cv
	}
	a, b := mk(), mk()
	for x := 0.0; x <= 9; x += 0.25 {
		va, na, ea := a.Call(testInput{X: x})
		vb, nb, eb := b.CallCtx(context.Background(), testInput{X: x})
		if va != vb || na != nb || !errors.Is(ea, eb) && (ea != nil || eb != nil) {
			t.Fatalf("x=%v: Call (%v,%q,%v) != CallCtx (%v,%q,%v)", x, va, na, ea, vb, nb, eb)
		}
	}
	sa, sb := a.Context().Stats("det-ctx"), b.Context().Stats("det-ctx")
	if !statsEquivalent(sa, sb) {
		t.Fatalf("stats diverged:\nCall:    %+v\nCallCtx: %+v", sa, sb)
	}
}

func TestCallConcurrentCtxMatchesCallConcurrent(t *testing.T) {
	mk := func() *CodeVariant[testInput] {
		cv := newCV(t, DefaultPolicy("det-cc"))
		trainToy(t, cv)
		return cv
	}
	var batch []testInput
	for x := 0.0; x <= 9; x += 0.25 {
		batch = append(batch, testInput{X: x})
	}
	a, b := mk(), mk()
	ra := a.CallConcurrent(batch, 4)
	rb := b.CallConcurrentCtx(context.Background(), batch, 4)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("CallConcurrent and CallConcurrentCtx results diverged")
	}
	sa, sb := a.Context().Stats("det-cc"), b.Context().Stats("det-cc")
	if !statsEquivalent(sa, sb) {
		t.Fatalf("stats diverged:\n%+v\n%+v", sa, sb)
	}
}

func TestCallConcurrentCtxCancellation(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("cc-cancel"))
	cv.AddVariant("slow", func(in testInput) float64 { time.Sleep(2 * time.Millisecond); return 1 })
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	ins := make([]testInput, 5000)
	results := cv.CallConcurrentCtx(ctx, ins, 2)
	cancelled := 0
	for _, r := range results {
		if r.Err != nil {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("unexpected error: %v", r.Err)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("cancellation did not stop the batch")
	}
}

// --- exhaustive search fault tolerance ------------------------------------

func TestExhaustiveSearchPanicScoresInfeasible(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("exh"))
	cv.AddVariant("broken", func(in testInput) float64 { panic("down") })
	cv.AddVariant("ok", func(in testInput) float64 { return 3 })
	values, best := cv.ExhaustiveSearch(testInput{X: 1})
	if !math.IsInf(values[0], 1) {
		t.Fatalf("panicking variant scored %v, want +Inf", values[0])
	}
	if best != 1 || values[1] != 3 {
		t.Fatalf("got best=%d values=%v, want best=1", best, values)
	}
}

func TestExhaustiveSearchCtxCancelled(t *testing.T) {
	cv := New[testInput](NewContext(), DefaultPolicy("exh-cancel"))
	cv.AddVariant("a", func(in testInput) float64 { return 1 })
	cv.AddVariant("b", func(in testInput) float64 { return 2 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	values, best := cv.ExhaustiveSearchCtx(ctx, testInput{X: 1})
	if best != -1 {
		t.Fatalf("cancelled search picked %d (%v), want -1", best, values)
	}
}

// --- model validation ------------------------------------------------------

func TestSetModelRejectsWrongFeatureDim(t *testing.T) {
	cv := newCV(t, DefaultPolicy("shape1")) // 1 feature, 2 variants
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: []int{0, 0, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	err = cv.Context().SetModel("shape1", &ml.Model{Classifier: svm, Scaler: scaler})
	if !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("want ErrModelMismatch for 2-feature model on 1-feature function, got %v", err)
	}
	if _, ok := cv.Context().Model("shape1"); ok {
		t.Fatal("rejected model must not be installed")
	}
}

func TestSetModelRejectsOutOfRangeClasses(t *testing.T) {
	cv := newCV(t, DefaultPolicy("shape2")) // 2 variants: labels 0..1
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform([][]float64{{0}, {1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: []int{0, 0, 5, 5}}); err != nil {
		t.Fatal(err)
	}
	err = cv.Context().SetModel("shape2", &ml.Model{Classifier: svm, Scaler: scaler})
	if !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("want ErrModelMismatch for class label 5 on a 2-variant function, got %v", err)
	}
}

func TestLoadModelRejectsMismatch(t *testing.T) {
	// Save a 2-feature model, then try to load it for a 1-feature function.
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: []int{0, 0, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	data, err := ml.MarshalModel(&ml.Model{Classifier: svm, Scaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cv := newCV(t, DefaultPolicy("shape3"))
	err = cv.Context().LoadModel("shape3", path)
	if !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("want ErrModelMismatch from LoadModel, got %v", err)
	}
}

func TestSetModelAcceptsUnknownShape(t *testing.T) {
	// No CodeVariant registered this function: nothing to validate against.
	cx := NewContext()
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: []int{0, 0, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := cx.SetModel("unseen", &ml.Model{Classifier: svm, Scaler: scaler}); err != nil {
		t.Fatalf("unknown shape must be accepted, got %v", err)
	}
}

// TestQuarantineHalfOpenSingleProbe: when a quarantined variant's cooldown
// elapses, exactly one of many concurrent callers is handed the half-open
// probe; everyone else keeps seeing the breaker open until the probe
// reports. A failed probe re-opens the quarantine and a later round hands
// out a fresh (single) probe that closes it.
func TestQuarantineHalfOpenSingleProbe(t *testing.T) {
	pol := QuarantinePolicy{Threshold: 1, Window: time.Second, Cooldown: time.Millisecond}.normalized()
	var b breaker

	if b.onFailure(brClosed, 0, pol); !b.open(time.Millisecond.Nanoseconds()-1) {
		t.Fatal("breaker did not trip on threshold failure")
	}

	probeRound := func(now int64) brAcquire {
		t.Helper()
		const callers = 32
		var probes, opens atomic.Int64
		var probeAcq atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				switch acq := b.acquire(now); acq {
				case brProbe:
					probes.Add(1)
					probeAcq.Store(int64(acq))
				case brOpen:
					opens.Add(1)
				default:
					t.Errorf("half-open acquire returned %v", acq)
				}
			}()
		}
		wg.Wait()
		if got := probes.Load(); got != 1 {
			t.Fatalf("%d callers hold the half-open probe, want exactly 1", got)
		}
		if got := opens.Load(); got != int64(callers-1) {
			t.Fatalf("%d callers saw the breaker open, want %d", got, callers-1)
		}
		return brAcquire(probeAcq.Load())
	}

	// Round 1: cooldown elapsed, one probe wins — and its failure re-opens
	// the quarantine for a fresh cooldown.
	afterCooldown := pol.Cooldown.Nanoseconds() + 1
	acq := probeRound(afterCooldown)
	if !b.onFailure(acq, afterCooldown, pol) {
		t.Fatal("failed probe did not re-trip the quarantine")
	}
	if !b.open(afterCooldown + 1) {
		t.Fatal("breaker closed after a failed probe")
	}

	// Round 2: after the renewed cooldown a new single probe succeeds and
	// closes the breaker for everyone.
	later := afterCooldown + pol.Cooldown.Nanoseconds() + 1
	acq = probeRound(later)
	if !b.onSuccess(acq) {
		t.Fatal("successful probe did not report recovery")
	}
	if got := b.acquire(later + 1); got != brClosed {
		t.Fatalf("post-recovery acquire = %v, want brClosed", got)
	}
}
