package core

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"nitro/internal/ml"
)

// testInput is a toy tunable-function input: variant "small" is best below
// the threshold, "large" above.
type testInput struct{ X float64 }

func newCV(t *testing.T, policy TuningPolicy) *CodeVariant[testInput] {
	t.Helper()
	cx := NewContext()
	cv := New[testInput](cx, policy)
	cv.AddVariant("small", func(in testInput) float64 { return 1 + in.X })  // good for small X
	cv.AddVariant("large", func(in testInput) float64 { return 10 - in.X }) // good for large X
	cv.AddInputFeature(Feature[testInput]{
		Name: "x",
		Eval: func(in testInput) float64 { return in.X },
		Cost: func(in testInput) float64 { return 1e-6 },
	})
	if err := cv.SetDefault("small"); err != nil {
		t.Fatal(err)
	}
	return cv
}

// trainToy fits a tiny model mapping x<4.5 -> 0, else -> 1 and installs it.
func trainToy(t *testing.T, cv *CodeVariant[testInput]) {
	t.Helper()
	ds := &ml.Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	cv.Context().SetModel(cv.Policy().Name, &ml.Model{Classifier: svm, Scaler: scaler})
}

func TestCallWithoutModelUsesDefault(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	v, name, err := cv.Call(testInput{X: 9})
	if err != nil {
		t.Fatal(err)
	}
	if name != "small" {
		t.Errorf("no-model call used %q, want default", name)
	}
	if v != 10 {
		t.Errorf("value = %v", v)
	}
	st := cv.Context().Stats("toy")
	if st.Calls != 1 || st.DefaultFallbacks != 1 || st.PerVariant["small"] != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestCallWithModelSelectsAdaptively(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	_, nameSmall, _ := cv.Call(testInput{X: 1})
	_, nameLarge, _ := cv.Call(testInput{X: 8})
	if nameSmall != "small" || nameLarge != "large" {
		t.Errorf("adaptive selection wrong: %q / %q", nameSmall, nameLarge)
	}
	st := cv.Context().Stats("toy")
	if st.Calls != 2 || st.DefaultFallbacks != 0 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.FeatureSeconds <= 0 {
		t.Errorf("feature cost not recorded: %+v", st)
	}
}

func TestConstraintFallsBackToDefault(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	// Veto "large" everywhere: predictions of label 1 must fall back.
	if err := cv.AddConstraint("large", func(testInput) bool { return false }); err != nil {
		t.Fatal(err)
	}
	_, name, _ := cv.Call(testInput{X: 8})
	if name != "small" {
		t.Errorf("vetoed prediction executed %q, want default", name)
	}
	if st := cv.Context().Stats("toy"); st.DefaultFallbacks != 1 {
		t.Errorf("fallback not recorded: %+v", st)
	}
}

func TestConstraintsDisabledByPolicy(t *testing.T) {
	p := DefaultPolicy("toy")
	p.ConstraintsEnabled = false
	cv := newCV(t, p)
	trainToy(t, cv)
	_ = cv.AddConstraint("large", func(testInput) bool { return false })
	_, name, _ := cv.Call(testInput{X: 8})
	if name != "large" {
		t.Errorf("disabled constraints should not veto: got %q", name)
	}
}

func TestExhaustiveSearch(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	vals, best := cv.ExhaustiveSearch(testInput{X: 8})
	if best != 1 {
		t.Errorf("best = %d, want 1", best)
	}
	if vals[0] != 9 || vals[1] != 2 {
		t.Errorf("values = %v", vals)
	}
	_ = cv.AddConstraint("large", func(testInput) bool { return false })
	vals, best = cv.ExhaustiveSearch(testInput{X: 8})
	if best != 0 || !math.IsInf(vals[1], 1) {
		t.Errorf("vetoed variant should score +Inf: %v best %d", vals, best)
	}
	_ = cv.AddConstraint("small", func(testInput) bool { return false })
	_, best = cv.ExhaustiveSearch(testInput{X: 8})
	if best != -1 {
		t.Errorf("all-vetoed best = %d, want -1", best)
	}
}

func TestParallelFeatureEval(t *testing.T) {
	p := DefaultPolicy("toy")
	p.ParallelFeatureEval = true
	cv := newCV(t, p)
	cv.AddInputFeature(Feature[testInput]{
		Name: "x2",
		Eval: func(in testInput) float64 { return in.X * in.X },
		Cost: func(testInput) float64 { return 3e-6 },
	})
	vec, cost := cv.FeatureVector(testInput{X: 3})
	if vec[0] != 3 || vec[1] != 9 {
		t.Errorf("parallel features wrong: %v", vec)
	}
	// Parallel cost is the max, not the sum.
	if math.Abs(cost-3e-6) > 1e-12 {
		t.Errorf("parallel cost = %v, want 3e-6", cost)
	}
	serial := newCV(t, DefaultPolicy("toy"))
	serial.AddInputFeature(Feature[testInput]{
		Name: "x2",
		Eval: func(in testInput) float64 { return in.X * in.X },
		Cost: func(testInput) float64 { return 3e-6 },
	})
	_, sCost := serial.FeatureVector(testInput{X: 3})
	if math.Abs(sCost-4e-6) > 1e-12 {
		t.Errorf("serial cost = %v, want 4e-6", sCost)
	}
}

func TestAsyncFeatureEval(t *testing.T) {
	p := DefaultPolicy("toy")
	p.AsyncFeatureEval = true
	cv := newCV(t, p)
	trainToy(t, cv)
	f := cv.FixInputs(testInput{X: 8})
	_, name, err := cv.CallFixed(f)
	if err != nil {
		t.Fatal(err)
	}
	if name != "large" {
		t.Errorf("async call selected %q", name)
	}
	// Async feature cost is hidden (recorded as 0).
	if st := cv.Context().Stats("toy"); st.FeatureSeconds != 0 {
		t.Errorf("async feature cost should be hidden: %+v", st)
	}
	// A plain Call needs no handle and evaluates synchronously.
	_, name, _ = cv.Call(testInput{X: 1})
	if name != "small" {
		t.Errorf("post-async call selected %q", name)
	}
}

func TestFixInputsEagerWhenSyncPolicy(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	evals := 0
	cv.AddInputFeature(Feature[testInput]{
		Name: "probe",
		Eval: func(in testInput) float64 { evals++; return in.X },
	})
	f := cv.FixInputs(testInput{X: 1})
	if evals != 1 {
		t.Fatalf("sync-policy FixInputs should evaluate eagerly, evals = %d", evals)
	}
	if f.done != nil {
		t.Error("sync-policy FixInputs armed a background evaluation")
	}
	if _, name, err := f.Call(); err != nil || name != "small" {
		t.Errorf("CallFixed under sync policy: %q %v", name, err)
	}
	// Eager (non-overlapped) evaluation charges the feature cost.
	if st := cv.Context().Stats("toy"); st.FeatureSeconds <= 0 {
		t.Errorf("sync FixInputs cost should be recorded: %+v", st)
	}
}

// TestCallFixedBindsFixedInput is the regression test for the async
// input-mismatch bug: the old API stored the pending future on the
// CodeVariant, so FixInputs(in1) followed by Call(in2) selected a variant
// from in1's features but checked constraints on — and executed — in2. The
// per-call handle binds the input, so features, constraints and execution
// must all see the fixed input.
func TestCallFixedBindsFixedInput(t *testing.T) {
	p := DefaultPolicy("toy")
	p.AsyncFeatureEval = true

	// "large" is allowed on the fixed input (X=8) but vetoed on small X.
	// With the shared-state bug, FixInputs(8) + Call(2) selected from X=8's
	// features but checked the constraint on — and executed — X=2, silently
	// falling back to the default on the wrong input. The handle pins
	// features, constraints and execution to X=8.
	var got testInput
	cv := New[testInput](NewContext(), p)
	cv.AddVariant("small", func(in testInput) float64 { got = in; return 1 + in.X })
	cv.AddVariant("large", func(in testInput) float64 { got = in; return 10 - in.X })
	if err := cv.SetDefault("small"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})
	trainToy(t, cv)
	if err := cv.AddConstraint("large", func(in testInput) bool { return in.X > 5 }); err != nil {
		t.Fatal(err)
	}

	f := cv.FixInputs(testInput{X: 8})
	_, name, err := cv.CallFixed(f)
	if err != nil {
		t.Fatal(err)
	}
	if name != "large" {
		t.Errorf("fixed call selected %q, want the model's pick for the fixed input", name)
	}
	if got.X != 8 {
		t.Errorf("variant executed on X=%v, want the fixed input X=8", got.X)
	}
	if st := cv.Context().Stats("toy"); st.DefaultFallbacks != 0 {
		t.Errorf("fixed call should not fall back: %+v", st)
	}
}

func TestFixedHandleSingleShot(t *testing.T) {
	p := DefaultPolicy("toy")
	p.AsyncFeatureEval = true
	cv := newCV(t, p)
	f := cv.FixInputs(testInput{X: 1})
	if _, _, err := f.Call(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Call(); err == nil {
		t.Error("consuming a Fixed handle twice should error")
	}
	other := newCV(t, DefaultPolicy("toy"))
	if _, _, err := other.CallFixed(cv.FixInputs(testInput{X: 1})); err == nil {
		t.Error("CallFixed with a foreign handle should error")
	}
	if _, _, err := cv.CallFixed(nil); err == nil {
		t.Error("CallFixed(nil) should error")
	}
	if in := cv.FixInputs(testInput{X: 3}).Input(); in.X != 3 {
		t.Errorf("Input() = %+v", in)
	}
}

func TestErrorsAndAccessors(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("fn"))
	if _, _, err := cv.Call(testInput{}); err == nil {
		t.Error("Call with no variants should error")
	}
	if err := cv.SetDefault("nope"); err == nil {
		t.Error("SetDefault on unknown variant should not succeed")
	}
	if err := cv.AddConstraint("nope", func(testInput) bool { return true }); err == nil {
		t.Error("AddConstraint on unknown variant should not succeed")
	}
	cv.AddVariant("a", func(testInput) float64 { return 1 })
	cv.AddInputFeature(Feature[testInput]{Name: "f", Eval: func(testInput) float64 { return 0 }})
	if cv.NumVariants() != 1 || cv.VariantNames()[0] != "a" || cv.FeatureNames()[0] != "f" {
		t.Error("accessors wrong")
	}
	if cv.Context() != cx {
		t.Error("Context accessor wrong")
	}
	if New[testInput](nil, DefaultPolicy("x")).Context() == nil {
		t.Error("nil context should be replaced")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	path := filepath.Join(t.TempDir(), "toy.model.json")
	if err := cv.Context().SaveModel("toy", path); err != nil {
		t.Fatal(err)
	}
	cx2 := NewContext()
	if err := cx2.LoadModel("toy", path); err != nil {
		t.Fatal(err)
	}
	m1, _ := cv.Context().Model("toy")
	m2, _ := cx2.Model("toy")
	for x := 0.0; x < 10; x += 0.5 {
		if m1.Predict([]float64{x}) != m2.Predict([]float64{x}) {
			t.Fatalf("reloaded model disagrees at x=%v", x)
		}
	}
	if err := cv.Context().SaveModel("absent", path); err == nil {
		t.Error("saving a missing model should error")
	}
	if err := cx2.LoadModel("toy", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestStatsIsolatedCopy(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	_, _, _ = cv.Call(testInput{X: 1})
	st := cv.Context().Stats("toy")
	st.PerVariant["small"] = 999
	if cv.Context().Stats("toy").PerVariant["small"] == 999 {
		t.Error("Stats returned shared state")
	}
	empty := cv.Context().Stats("unknown")
	if empty.Calls != 0 || empty.PerVariant == nil {
		t.Error("unknown-function stats should be empty but usable")
	}
}

// TestNonTimeCriterion exercises the paper's note that variants may return
// any minimized value (e.g. energy) instead of time: the selection machinery
// is agnostic to the criterion's meaning.
func TestNonTimeCriterion(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("energy"))
	// Joules consumed, not seconds: "eco" draws little for small inputs.
	cv.AddVariant("eco", func(in testInput) float64 { return 0.5 + 0.4*in.X })
	cv.AddVariant("burst", func(in testInput) float64 { return 3.0 })
	_ = cv.SetDefault("burst")
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})

	// Exhaustive search labels by lowest energy.
	_, best := cv.ExhaustiveSearch(testInput{X: 1})
	if best != 0 {
		t.Errorf("small input should label eco, got %d", best)
	}
	_, best = cv.ExhaustiveSearch(testInput{X: 9})
	if best != 1 {
		t.Errorf("large input should label burst, got %d", best)
	}
}

// Property: the selection engine never returns a constraint-violating
// variant — any prediction that fails its constraint lands on the default.
func TestQuickSelectionRespectsConstraints(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	// "large" is only legal below 7.
	if err := cv.AddConstraint("large", func(in testInput) bool { return in.X < 7 }); err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		x := float64(raw%1000) / 100 // [0, 10)
		in := testInput{X: x}
		vec, _ := cv.FeatureVector(in)
		idx, _, err := cv.SelectIndex(in, vec)
		if err != nil {
			return false
		}
		if idx == 1 && x >= 7 {
			return false // vetoed variant selected
		}
		return idx == 0 || idx == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSelectIndexSkipsVetoedDefault is the regression test for the vetoed-
// default bug: the selection engine fell back to the default variant without
// checking the default's own constraints, so a vetoed default could execute.
// The fallback chain must land on the first allowed variant instead.
func TestSelectIndexSkipsVetoedDefault(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	// Veto the model's pick for X=8 ("large") AND the default ("small"):
	// the engine must not execute the vetoed default.
	if err := cv.AddConstraint("large", func(testInput) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if err := cv.AddConstraint("small", func(in testInput) bool { return in.X < 5 }); err != nil {
		t.Fatal(err)
	}
	cv.AddVariant("rescue", func(in testInput) float64 { return 100 })

	in := testInput{X: 8} // "large" predicted, "large" and "small" vetoed
	vec, _ := cv.FeatureVector(in)
	idx, fallback, err := cv.SelectIndex(in, vec)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 || !fallback {
		t.Errorf("SelectIndex = (%d, %v), want the first allowed variant (2, true)", idx, fallback)
	}
	if _, name, err := cv.Call(in); err != nil || name != "rescue" {
		t.Errorf("Call with vetoed default executed %q (err %v), want rescue", name, err)
	}
}

func TestAllVariantsVetoedSurfacesError(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	for _, name := range cv.VariantNames() {
		if err := cv.AddConstraint(name, func(testInput) bool { return false }); err != nil {
			t.Fatal(err)
		}
	}
	in := testInput{X: 3}
	vec, _ := cv.FeatureVector(in)
	idx, _, err := cv.SelectIndex(in, vec)
	if !errors.Is(err, ErrAllVariantsVetoed) || idx != -1 {
		t.Errorf("SelectIndex = (%d, err %v), want (-1, ErrAllVariantsVetoed)", idx, err)
	}
	if _, _, err := cv.Call(in); !errors.Is(err, ErrAllVariantsVetoed) {
		t.Errorf("Call on an all-vetoed input returned err %v, want ErrAllVariantsVetoed", err)
	}
	// The failed call must not be recorded as executed.
	if st := cv.Context().Stats("toy"); st.Calls != 0 {
		t.Errorf("vetoed call recorded in stats: %+v", st)
	}
}

func TestCallConcurrentMatchesSerial(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	var ins []testInput
	for x := 0.0; x < 10; x += 0.25 {
		ins = append(ins, testInput{X: x})
	}
	serial := make([]CallResult, len(ins))
	ref := newCV(t, DefaultPolicy("toy"))
	trainToy(t, ref)
	for i, in := range ins {
		serial[i].Value, serial[i].Variant, serial[i].Err = ref.Call(in)
	}
	for _, workers := range []int{0, 1, 4} {
		got := cv.CallConcurrent(ins, workers)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Errorf("workers=%d input %d: got %+v want %+v", workers, i, got[i], serial[i])
			}
		}
	}
	st := cv.Context().Stats("toy")
	if st.Calls != 3*len(ins) {
		t.Errorf("stats counted %d calls, want %d", st.Calls, 3*len(ins))
	}
}
