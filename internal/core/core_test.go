package core

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"nitro/internal/ml"
)

// testInput is a toy tunable-function input: variant "small" is best below
// the threshold, "large" above.
type testInput struct{ X float64 }

func newCV(t *testing.T, policy TuningPolicy) *CodeVariant[testInput] {
	t.Helper()
	cx := NewContext()
	cv := New[testInput](cx, policy)
	cv.AddVariant("small", func(in testInput) float64 { return 1 + in.X })  // good for small X
	cv.AddVariant("large", func(in testInput) float64 { return 10 - in.X }) // good for large X
	cv.AddInputFeature(Feature[testInput]{
		Name: "x",
		Eval: func(in testInput) float64 { return in.X },
		Cost: func(in testInput) float64 { return 1e-6 },
	})
	if err := cv.SetDefault("small"); err != nil {
		t.Fatal(err)
	}
	return cv
}

// trainToy fits a tiny model mapping x<4.5 -> 0, else -> 1 and installs it.
func trainToy(t *testing.T, cv *CodeVariant[testInput]) {
	t.Helper()
	ds := &ml.Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	cv.Context().SetModel(cv.Policy().Name, &ml.Model{Classifier: svm, Scaler: scaler})
}

func TestCallWithoutModelUsesDefault(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	v, name, err := cv.Call(testInput{X: 9})
	if err != nil {
		t.Fatal(err)
	}
	if name != "small" {
		t.Errorf("no-model call used %q, want default", name)
	}
	if v != 10 {
		t.Errorf("value = %v", v)
	}
	st := cv.Context().Stats("toy")
	if st.Calls != 1 || st.DefaultFallbacks != 1 || st.PerVariant["small"] != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestCallWithModelSelectsAdaptively(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	_, nameSmall, _ := cv.Call(testInput{X: 1})
	_, nameLarge, _ := cv.Call(testInput{X: 8})
	if nameSmall != "small" || nameLarge != "large" {
		t.Errorf("adaptive selection wrong: %q / %q", nameSmall, nameLarge)
	}
	st := cv.Context().Stats("toy")
	if st.Calls != 2 || st.DefaultFallbacks != 0 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.FeatureSeconds <= 0 {
		t.Errorf("feature cost not recorded: %+v", st)
	}
}

func TestConstraintFallsBackToDefault(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	// Veto "large" everywhere: predictions of label 1 must fall back.
	if err := cv.AddConstraint("large", func(testInput) bool { return false }); err != nil {
		t.Fatal(err)
	}
	_, name, _ := cv.Call(testInput{X: 8})
	if name != "small" {
		t.Errorf("vetoed prediction executed %q, want default", name)
	}
	if st := cv.Context().Stats("toy"); st.DefaultFallbacks != 1 {
		t.Errorf("fallback not recorded: %+v", st)
	}
}

func TestConstraintsDisabledByPolicy(t *testing.T) {
	p := DefaultPolicy("toy")
	p.ConstraintsEnabled = false
	cv := newCV(t, p)
	trainToy(t, cv)
	_ = cv.AddConstraint("large", func(testInput) bool { return false })
	_, name, _ := cv.Call(testInput{X: 8})
	if name != "large" {
		t.Errorf("disabled constraints should not veto: got %q", name)
	}
}

func TestExhaustiveSearch(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	vals, best := cv.ExhaustiveSearch(testInput{X: 8})
	if best != 1 {
		t.Errorf("best = %d, want 1", best)
	}
	if vals[0] != 9 || vals[1] != 2 {
		t.Errorf("values = %v", vals)
	}
	_ = cv.AddConstraint("large", func(testInput) bool { return false })
	vals, best = cv.ExhaustiveSearch(testInput{X: 8})
	if best != 0 || !math.IsInf(vals[1], 1) {
		t.Errorf("vetoed variant should score +Inf: %v best %d", vals, best)
	}
	_ = cv.AddConstraint("small", func(testInput) bool { return false })
	_, best = cv.ExhaustiveSearch(testInput{X: 8})
	if best != -1 {
		t.Errorf("all-vetoed best = %d, want -1", best)
	}
}

func TestParallelFeatureEval(t *testing.T) {
	p := DefaultPolicy("toy")
	p.ParallelFeatureEval = true
	cv := newCV(t, p)
	cv.AddInputFeature(Feature[testInput]{
		Name: "x2",
		Eval: func(in testInput) float64 { return in.X * in.X },
		Cost: func(testInput) float64 { return 3e-6 },
	})
	vec, cost := cv.FeatureVector(testInput{X: 3})
	if vec[0] != 3 || vec[1] != 9 {
		t.Errorf("parallel features wrong: %v", vec)
	}
	// Parallel cost is the max, not the sum.
	if math.Abs(cost-3e-6) > 1e-12 {
		t.Errorf("parallel cost = %v, want 3e-6", cost)
	}
	serial := newCV(t, DefaultPolicy("toy"))
	serial.AddInputFeature(Feature[testInput]{
		Name: "x2",
		Eval: func(in testInput) float64 { return in.X * in.X },
		Cost: func(testInput) float64 { return 3e-6 },
	})
	_, sCost := serial.FeatureVector(testInput{X: 3})
	if math.Abs(sCost-4e-6) > 1e-12 {
		t.Errorf("serial cost = %v, want 4e-6", sCost)
	}
}

func TestAsyncFeatureEval(t *testing.T) {
	p := DefaultPolicy("toy")
	p.AsyncFeatureEval = true
	cv := newCV(t, p)
	trainToy(t, cv)
	cv.FixInputs(testInput{X: 8})
	_, name, err := cv.Call(testInput{X: 8})
	if err != nil {
		t.Fatal(err)
	}
	if name != "large" {
		t.Errorf("async call selected %q", name)
	}
	// Async feature cost is hidden (recorded as 0).
	if st := cv.Context().Stats("toy"); st.FeatureSeconds != 0 {
		t.Errorf("async feature cost should be hidden: %+v", st)
	}
	// Next call without FixInputs evaluates synchronously again.
	_, name, _ = cv.Call(testInput{X: 1})
	if name != "small" {
		t.Errorf("post-async call selected %q", name)
	}
}

func TestFixInputsNoopWhenSyncPolicy(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	cv.FixInputs(testInput{X: 1}) // must not arm anything
	if cv.fixed {
		t.Error("FixInputs armed async state under a sync policy")
	}
}

func TestErrorsAndAccessors(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("fn"))
	if _, _, err := cv.Call(testInput{}); err == nil {
		t.Error("Call with no variants should error")
	}
	if err := cv.SetDefault("nope"); err == nil {
		t.Error("SetDefault on unknown variant should not succeed")
	}
	if err := cv.AddConstraint("nope", func(testInput) bool { return true }); err == nil {
		t.Error("AddConstraint on unknown variant should not succeed")
	}
	cv.AddVariant("a", func(testInput) float64 { return 1 })
	cv.AddInputFeature(Feature[testInput]{Name: "f", Eval: func(testInput) float64 { return 0 }})
	if cv.NumVariants() != 1 || cv.VariantNames()[0] != "a" || cv.FeatureNames()[0] != "f" {
		t.Error("accessors wrong")
	}
	if cv.Context() != cx {
		t.Error("Context accessor wrong")
	}
	if New[testInput](nil, DefaultPolicy("x")).Context() == nil {
		t.Error("nil context should be replaced")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	path := filepath.Join(t.TempDir(), "toy.model.json")
	if err := cv.Context().SaveModel("toy", path); err != nil {
		t.Fatal(err)
	}
	cx2 := NewContext()
	if err := cx2.LoadModel("toy", path); err != nil {
		t.Fatal(err)
	}
	m1, _ := cv.Context().Model("toy")
	m2, _ := cx2.Model("toy")
	for x := 0.0; x < 10; x += 0.5 {
		if m1.Predict([]float64{x}) != m2.Predict([]float64{x}) {
			t.Fatalf("reloaded model disagrees at x=%v", x)
		}
	}
	if err := cv.Context().SaveModel("absent", path); err == nil {
		t.Error("saving a missing model should error")
	}
	if err := cx2.LoadModel("toy", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestStatsIsolatedCopy(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	_, _, _ = cv.Call(testInput{X: 1})
	st := cv.Context().Stats("toy")
	st.PerVariant["small"] = 999
	if cv.Context().Stats("toy").PerVariant["small"] == 999 {
		t.Error("Stats returned shared state")
	}
	empty := cv.Context().Stats("unknown")
	if empty.Calls != 0 || empty.PerVariant == nil {
		t.Error("unknown-function stats should be empty but usable")
	}
}

// TestNonTimeCriterion exercises the paper's note that variants may return
// any minimized value (e.g. energy) instead of time: the selection machinery
// is agnostic to the criterion's meaning.
func TestNonTimeCriterion(t *testing.T) {
	cx := NewContext()
	cv := New[testInput](cx, DefaultPolicy("energy"))
	// Joules consumed, not seconds: "eco" draws little for small inputs.
	cv.AddVariant("eco", func(in testInput) float64 { return 0.5 + 0.4*in.X })
	cv.AddVariant("burst", func(in testInput) float64 { return 3.0 })
	_ = cv.SetDefault("burst")
	cv.AddInputFeature(Feature[testInput]{Name: "x", Eval: func(in testInput) float64 { return in.X }})

	// Exhaustive search labels by lowest energy.
	_, best := cv.ExhaustiveSearch(testInput{X: 1})
	if best != 0 {
		t.Errorf("small input should label eco, got %d", best)
	}
	_, best = cv.ExhaustiveSearch(testInput{X: 9})
	if best != 1 {
		t.Errorf("large input should label burst, got %d", best)
	}
}

// Property: the selection engine never returns a constraint-violating
// variant — any prediction that fails its constraint lands on the default.
func TestQuickSelectionRespectsConstraints(t *testing.T) {
	cv := newCV(t, DefaultPolicy("toy"))
	trainToy(t, cv)
	// "large" is only legal below 7.
	if err := cv.AddConstraint("large", func(in testInput) bool { return in.X < 7 }); err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		x := float64(raw%1000) / 100 // [0, 10)
		in := testInput{X: x}
		vec, _ := cv.FeatureVector(in)
		idx, _ := cv.SelectIndex(in, vec)
		if idx == 1 && x >= 7 {
			return false // vetoed variant selected
		}
		return idx == 0 || idx == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
