// Observability wiring for the deployment runtime: decision tracing on the
// dispatch path, opt-in per-variant latency histograms, and the metrics
// Collector that exports every deployment counter to internal/obs's
// telemetry endpoint.
//
// Everything here is off by default and costs the hot path one atomic
// pointer load per feature:
//
//   - No tracer installed (EnableTracing never called): dispatch pays one
//     atomic load to discover that.
//   - Tracer installed in Off mode: one atomic load plus one policy check.
//   - No histogram table installed: record pays one atomic load.
//
// The traced path deliberately reuses the exact functions dispatch itself
// uses (ml.Model.Explain is built on Scores/RankedClasses/Predict), so a
// trace can never disagree with the decision it explains.
package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"nitro/internal/obs"
)

// EnableTracing installs a fresh decision tracer with the given policy and
// returns it (for Recent/SetSink/Collector access). The swap is atomic:
// in-flight calls keep the tracer they already loaded. One tracer per
// CodeVariant; installing replaces the previous one.
func (cv *CodeVariant[In]) EnableTracing(pol obs.TracePolicy) *obs.Tracer {
	t := obs.NewTracer(pol)
	cv.tracer.Store(t)
	return t
}

// DisableTracing removes the installed tracer; subsequent dispatches pay one
// atomic load and record nothing.
func (cv *CodeVariant[In]) DisableTracing() { cv.tracer.Store(nil) }

// Tracer returns the installed tracer, or nil when tracing is disabled.
func (cv *CodeVariant[In]) Tracer() *obs.Tracer { return cv.tracer.Load() }

// dispatchTraced runs one admitted dispatch under full decision capture:
// the model explanation (raw + scaled features, per-class scores, pairwise
// SVM decision values, ranked preference order), the selection-time veto and
// quarantine view, the executed variant and the failure fallback hop count.
func (cv *CodeVariant[In]) dispatchTraced(ctx context.Context, t *obs.Tracer, in In, vec []float64, featSeconds float64, pre *prediction) (float64, string, error) {
	start := time.Now()
	rec := obs.DecisionTrace{
		Function:    cv.policy.Name,
		RawFeatures: append([]float64(nil), vec...),
		Predicted:   -1,
		ChosenIdx:   -1,
		Start:       start,
	}
	if m := cv.model.p.Load(); m != nil {
		ex := m.Explain(vec)
		rec.ScaledFeatures = ex.Scaled
		rec.Classes = ex.Classes
		rec.Scores = ex.Scores
		rec.PairDecisions = ex.PairDecisions
		rec.Ranked = ex.Ranked
		rec.Predicted = ex.Predicted
		rec.ModelVersion = ex.Version
	}
	var now int64
	if cv.policy.Quarantine.Enabled() {
		now = nowNanos()
	}
	for i := range cv.variants {
		if !cv.Allowed(i, in) {
			rec.Vetoed = append(rec.Vetoed, cv.variants[i].name)
			continue
		}
		if cv.policy.Quarantine.Enabled() {
			if br := cv.variants[i].br; br != nil && br.open(now) {
				rec.Quarantined = append(rec.Quarantined, cv.variants[i].name)
			}
		}
	}
	r := cv.dispatchRun(ctx, in, vec, featSeconds, pre)
	rec.FellBack = r.fellBack
	rec.FallbackHops = r.hops
	rec.ChosenIdx = r.idx
	rec.Chosen = r.name
	rec.Value = r.value
	rec.Tier = r.tier.String()
	if r.err != nil {
		rec.Err = r.err.Error()
	}
	rec.WallNanos = time.Since(start).Nanoseconds()
	t.Emit(rec)
	return r.value, r.name, r.err
}

// histTable is one function's opt-in per-variant latency histogram set.
// After the first record for a given variant, the sync.Map read path is
// lock-free; each histogram is itself sharded and atomic.
type histTable struct {
	m sync.Map // variant name -> *obs.Histogram
}

func (ht *histTable) record(variant string, value float64) {
	h, ok := ht.m.Load(variant)
	if !ok {
		h, _ = ht.m.LoadOrStore(variant, obs.NewHistogram())
	}
	h.(*obs.Histogram).Record(value)
}

// summaries digests every variant's histogram and fills the per-variant
// regret estimate: (mean - bestMean) / bestMean, where bestMean is the lowest
// mean among variants that have observations (0 for the best variant itself).
func (ht *histTable) summaries() map[string]obs.LatencySummary {
	out := map[string]obs.LatencySummary{}
	ht.m.Range(func(k, v any) bool {
		out[k.(string)] = v.(*obs.Histogram).Snapshot()
		return true
	})
	best := 0.0
	haveBest := false
	for _, s := range out {
		if s.Count > 0 && (!haveBest || s.Mean < best) {
			best, haveBest = s.Mean, true
		}
	}
	if haveBest && best > 0 {
		for name, s := range out {
			if s.Count > 0 {
				s.Regret = (s.Mean - best) / best
				out[name] = s
			}
		}
	}
	return out
}

// EnableLatencyHistograms turns on per-variant latency histograms for fn:
// every recorded call value (by convention, seconds) feeds a log-bucketed
// lock-free histogram keyed by the executed variant. Context.Stats then
// reports p50/p95/p99 and regret per variant, and the Collector exports the
// full bucket series. Idempotent; safe to call while fn serves traffic.
func (cx *Context) EnableLatencyHistograms(fn string) {
	fs := cx.statsFor(fn)
	if fs.hists.Load() == nil {
		fs.hists.CompareAndSwap(nil, &histTable{})
	}
}

// DisableLatencyHistograms removes fn's histogram table (dropping its
// accumulated observations); recording reverts to one atomic load.
func (cx *Context) DisableLatencyHistograms(fn string) {
	cx.statsFor(fn).hists.Store(nil)
}

// Collector exports every registered function's deployment statistics as
// nitro_-prefixed metrics: call/fallback/failure counters, per-variant call
// counts, installed model version, and (when enabled) per-variant latency
// histograms. Register it on an obs.Registry to serve /metrics.
func (cx *Context) Collector() obs.Collector {
	return func(emit func(obs.Metric)) {
		cx.mu.Lock()
		names := make([]string, 0, len(cx.stats))
		stats := make(map[string]*funcStats, len(cx.stats))
		for n, fs := range cx.stats {
			names = append(names, n)
			stats[n] = fs
		}
		versions := map[string]int{}
		for n, slot := range cx.models {
			if m := slot.p.Load(); m != nil {
				versions[n] = m.Version()
			}
		}
		cx.mu.Unlock()
		sort.Strings(names)

		counter := func(name, help string, labels []obs.Label, v float64) {
			emit(obs.Metric{Name: name, Help: help, Kind: obs.KindCounter, Labels: labels, Value: v})
		}
		for _, fn := range names {
			s := stats[fn].snapshot()
			fl := []obs.Label{{Key: "function", Value: fn}}
			counter("nitro_calls_total", "Dispatched calls.", fl, float64(s.Calls))
			counter("nitro_default_fallbacks_total", "Selection-time fallbacks (constraint veto, quarantine, missing model).", fl, float64(s.DefaultFallbacks))
			counter("nitro_failure_fallbacks_total", "Failure-driven fallback hops.", fl, float64(s.Fallbacks))
			counter("nitro_panics_total", "Variant invocations that panicked (recovered).", fl, float64(s.Panics))
			counter("nitro_timeouts_total", "Variant invocations that exceeded VariantTimeout.", fl, float64(s.Timeouts))
			counter("nitro_quarantine_trips_total", "Quarantine circuit-breaker trips.", fl, float64(s.Quarantined))
			counter("nitro_quarantine_recoveries_total", "Successful half-open quarantine probes.", fl, float64(s.Recoveries))
			counter("nitro_value_seconds_total", "Accumulated optimization value (by convention, seconds).", fl, s.TotalValue)
			counter("nitro_feature_seconds_total", "Accumulated modelled feature-evaluation cost.", fl, s.FeatureSeconds)
			counter("nitro_dispatch_memo_hits_total", "Model predictions served from the memoization cache.", fl, float64(s.MemoHits))
			counter("nitro_dispatch_compiled_hits_total", "Model predictions served by the compiled artifact.", fl, float64(s.CompiledHits))
			counter("nitro_dispatch_exact_total", "Model predictions that evaluated the exact classifier.", fl, float64(s.ExactFallbacks))
			if v, ok := versions[fn]; ok {
				emit(obs.Metric{Name: "nitro_model_version", Help: "Installed model generation (0 unstamped).",
					Kind: obs.KindGauge, Labels: fl, Value: float64(v)})
			}
			variants := make([]string, 0, len(s.PerVariant))
			for v := range s.PerVariant {
				variants = append(variants, v)
			}
			sort.Strings(variants)
			for _, v := range variants {
				counter("nitro_variant_calls_total", "Calls executed per variant.",
					[]obs.Label{{Key: "function", Value: fn}, {Key: "variant", Value: v}},
					float64(s.PerVariant[v]))
			}
			if ht := stats[fn].hists.Load(); ht != nil {
				var hnames []string
				hists := map[string]*obs.Histogram{}
				ht.m.Range(func(k, v any) bool {
					hnames = append(hnames, k.(string))
					hists[k.(string)] = v.(*obs.Histogram)
					return true
				})
				sort.Strings(hnames)
				bounds := obs.DefaultBounds()
				for _, v := range hnames {
					counts, count, sum := hists[v].Cumulative(bounds)
					buckets := make([]obs.Bucket, len(bounds))
					for i, le := range bounds {
						buckets[i] = obs.Bucket{LE: le, Count: counts[i]}
					}
					emit(obs.Metric{
						Name: "nitro_variant_value_seconds", Help: "Per-variant optimization-value distribution.",
						Kind:    obs.KindHistogram,
						Labels:  []obs.Label{{Key: "function", Value: fn}, {Key: "variant", Value: v}},
						Buckets: buckets, Count: count, Sum: sum,
					})
				}
			}
		}
	}
}
