package core_test

// Adaptation-overhead benchmarks, kept with the other BenchmarkCall* benches
// so `make bench-call` sweeps them. They live in an external test package
// because they attach a real internal/online engine (which imports core) to
// the deployment hot path:
//
//   - BenchmarkCallAdaptiveOff: no engine attached — the baseline every call
//     pays after this subsystem landed is one atomic observer load. The hard
//     requirement is that this stays within 2% of BenchmarkCallParallel
//     (the pre-adaptation dispatch baseline).
//   - BenchmarkCallAdaptiveOn: engine attached with ExploreRate 0 — the
//     sampling hook with zero exploration. The non-sampled path writes no
//     shared engine state (two flag loads + one per-thread admission draw);
//     the residual cost over AdaptiveOff is the CallObservation construction
//     and interface dispatch, a fixed handful of ns per call. On this
//     fixture's nanosecond-closure variants that is a visible percentage;
//     on any real variant workload (µs and up) it is noise.
//   - BenchmarkCallAdaptiveOnExploring: the DefaultPolicy budget (sample
//     every 4th call, explore a quarter of the samples) — what a deployment
//     actually pays, including the epsilon-greedy re-timing work.

import (
	"testing"

	"nitro/internal/core"
	"nitro/internal/ml"
	"nitro/internal/online"
)

type benchInput struct{ X float64 }

// buildAdaptiveCV constructs the same two-variant x<4.5 fixture as the
// in-package concurrency benchmarks, through the exported API.
func buildAdaptiveCV(tb testing.TB) *core.CodeVariant[benchInput] {
	tb.Helper()
	cx := core.NewContext()
	cv := core.New[benchInput](cx, core.DefaultPolicy("adapt-bench"))
	cv.AddVariant("small", func(in benchInput) float64 { return 1 + in.X })
	cv.AddVariant("large", func(in benchInput) float64 { return 10 - in.X })
	if err := cv.SetDefault("small"); err != nil {
		tb.Fatal(err)
	}
	cv.AddInputFeature(core.Feature[benchInput]{
		Name: "x",
		Eval: func(in benchInput) float64 { return in.X },
	})
	ds := &ml.Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		tb.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: ds.Y}); err != nil {
		tb.Fatal(err)
	}
	if err := cx.SetModel("adapt-bench", &ml.Model{Classifier: svm, Scaler: scaler}); err != nil {
		tb.Fatal(err)
	}
	return cv
}

func benchAdaptiveCalls(b *testing.B, cv *core.CodeVariant[benchInput]) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := cv.Call(benchInput{X: float64(i % 10)}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkCallAdaptiveOff(b *testing.B) {
	benchAdaptiveCalls(b, buildAdaptiveCV(b))
}

func BenchmarkCallAdaptiveOn(b *testing.B) {
	cv := buildAdaptiveCV(b)
	pol := online.DefaultPolicy(1)
	pol.ExploreRate = 0 // hook + sampling overhead only
	eng, err := online.Attach(cv, pol)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	benchAdaptiveCalls(b, cv)
}

func BenchmarkCallAdaptiveOnExploring(b *testing.B) {
	cv := buildAdaptiveCV(b)
	eng, err := online.Attach(cv, online.DefaultPolicy(1))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	benchAdaptiveCalls(b, cv)
}
