// Fault-tolerant dispatch: typed variant errors, panic isolation, per-call
// deadlines, and the per-variant quarantine circuit breaker.
//
// The paper assumes every registered variant returns successfully; a
// production selection engine cannot. This file gives the runtime three
// failure-handling layers:
//
//  1. Panic isolation — every variant invocation runs under recover(), so a
//     buggy variant surfaces as a typed *VariantError instead of killing the
//     process.
//  2. Deadlines — TuningPolicy.VariantTimeout bounds each invocation; a
//     variant that overruns returns ErrVariantTimeout (its goroutine is
//     abandoned, since Go cannot preempt arbitrary code), and context-aware
//     entry points (CallCtx, CallConcurrentCtx) honour caller cancellation.
//  3. Quarantine — a sliding-window circuit breaker per variant: N failures
//     inside the window exclude the variant from selection for a cooldown;
//     after the cooldown one half-open probe either recovers it or re-opens
//     the quarantine. Breaker state lives in the function's sharded stats
//     structure, so all CodeVariants bound to the same function name share
//     one view of variant health.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// ErrVariantTimeout is the cause recorded in a VariantError when a variant
// invocation exceeds the policy's VariantTimeout.
var ErrVariantTimeout = errors.New("core: variant call exceeded VariantTimeout")

// VariantError describes one failed variant invocation: which variant, why,
// and whether the failure was a recovered panic. Dispatch converts every
// variant panic, Abort and timeout into this type so callers can react with
// errors.As / errors.Is instead of crashing.
type VariantError struct {
	// Variant is the name of the failed variant.
	Variant string
	// Cause is the underlying failure: the recovered panic (wrapped),
	// ErrVariantTimeout, or the error passed to Abort.
	Cause error
	// Panicked reports whether the failure was a recovered panic (as opposed
	// to a timeout or an explicit Abort).
	Panicked bool
}

func (e *VariantError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("core: variant %q panicked: %v", e.Variant, e.Cause)
	}
	return fmt.Sprintf("core: variant %q failed: %v", e.Variant, e.Cause)
}

// Unwrap exposes the cause so errors.Is(err, ErrVariantTimeout) and friends
// work through the VariantError envelope.
func (e *VariantError) Unwrap() error { return e.Cause }

// variantAbort carries an error raised via Abort through the recover path so
// safeCall can distinguish a deliberate abort from a genuine panic.
type variantAbort struct{ err error }

// Abort aborts the calling variant with err. The dispatch layer converts it
// into a *VariantError with Panicked=false and walks the fallback chain,
// exactly as for a panic — it is the sanctioned way for a VariantFn (whose
// signature has no error result, mirroring the paper's value-returning
// variants) to report that it cannot handle this input.
func Abort(err error) {
	if err == nil {
		err = errors.New("core: variant aborted")
	}
	panic(variantAbort{err: err})
}

// safeCall invokes fn(in) under recover, converting a panic or Abort into a
// typed *VariantError. This is the single choke point through which every
// variant execution in the runtime (Call paths, exhaustive search, tuner
// labelling) flows.
func safeCall[In any](name string, fn VariantFn[In], in In) (val float64, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ab, ok := r.(variantAbort); ok {
			err = &VariantError{Variant: name, Cause: ab.err}
			return
		}
		err = &VariantError{Variant: name, Cause: fmt.Errorf("panic: %v", r), Panicked: true}
	}()
	return fn(in), nil
}

// QuarantinePolicy configures the per-variant failure circuit breaker.
// The zero value disables quarantining entirely.
type QuarantinePolicy struct {
	// Threshold is the number of failures inside one Window that trips the
	// breaker; 0 (the zero value) disables the quarantine.
	Threshold int
	// Window is the (tumbling) failure-counting window. Defaults to 1s when
	// Threshold > 0 and Window <= 0.
	Window time.Duration
	// Cooldown is how long a tripped variant stays excluded from selection
	// before a half-open probe may try it again. Defaults to 100ms when
	// Threshold > 0 and Cooldown <= 0.
	Cooldown time.Duration
}

// Enabled reports whether the policy quarantines at all.
func (q QuarantinePolicy) Enabled() bool { return q.Threshold > 0 }

// normalized fills in default window/cooldown for an enabled policy.
func (q QuarantinePolicy) normalized() QuarantinePolicy {
	if !q.Enabled() {
		return q
	}
	if q.Window <= 0 {
		q.Window = time.Second
	}
	if q.Cooldown <= 0 {
		q.Cooldown = 100 * time.Millisecond
	}
	return q
}

// DefaultQuarantine returns the breaker configuration used by the
// fault-injection harness and the examples: 5 failures within 1s quarantine
// a variant for 100ms.
func DefaultQuarantine() QuarantinePolicy {
	return QuarantinePolicy{Threshold: 5, Window: time.Second, Cooldown: 100 * time.Millisecond}
}

// brAcquire is the admission decision the breaker hands a caller about to
// execute a variant.
type brAcquire int

const (
	// brClosed: breaker closed, call freely.
	brClosed brAcquire = iota
	// brProbe: breaker half-open and this caller holds the single probe; it
	// must report the outcome via onSuccess/onFailure.
	brProbe
	// brOpen: variant quarantined (or the probe is already taken). Selection
	// skips it; the last-resort pass may still execute it.
	brOpen
)

// breaker is one variant's sliding-window circuit breaker. The open/closed
// check on the dispatch hot path is a single atomic load; the mutex is taken
// only on failures and half-open transitions, which are rare by construction.
type breaker struct {
	// openUntil is the unix-nano deadline of the current quarantine;
	// 0 means closed.
	openUntil atomic.Int64

	mu        sync.Mutex
	failures  int   // failures observed in the current window
	windowEnd int64 // unix nanos at which the current window tumbles
	probing   bool  // a half-open probe is in flight
}

// open reports whether the variant is currently quarantined. A breaker whose
// cooldown has elapsed (half-open) reports false: the variant is selectable
// again, and the dispatch path will claim the probe via acquire.
func (b *breaker) open(now int64) bool {
	ou := b.openUntil.Load()
	return ou != 0 && now < ou
}

// acquire admits a caller about to execute the variant.
func (b *breaker) acquire(now int64) brAcquire {
	ou := b.openUntil.Load()
	if ou == 0 {
		return brClosed
	}
	if now < ou {
		return brOpen
	}
	// Cooldown elapsed: half-open. Admit exactly one probe.
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.Load() == 0 {
		return brClosed // another probe already recovered it
	}
	if b.probing {
		return brOpen
	}
	b.probing = true
	return brProbe
}

// onSuccess reports a successful execution; a successful half-open probe
// closes the breaker. Returns true when the variant just recovered.
func (b *breaker) onSuccess(acq brAcquire) bool {
	if acq != brProbe {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.failures = 0
	b.openUntil.Store(0)
	return true
}

// onFailure records one failed execution under the (normalized) policy and
// returns true when this failure tripped (or re-tripped) the quarantine.
func (b *breaker) onFailure(acq brAcquire, now int64, q QuarantinePolicy) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch acq {
	case brProbe:
		// Failed probe: straight back into quarantine.
		b.probing = false
		b.openUntil.Store(now + q.Cooldown.Nanoseconds())
		return true
	case brOpen:
		// A last-resort execution of an already-quarantined variant failed:
		// extend the quarantine, but don't count a fresh trip.
		b.openUntil.Store(now + q.Cooldown.Nanoseconds())
		return false
	}
	if now > b.windowEnd {
		b.failures = 0
		b.windowEnd = now + q.Window.Nanoseconds()
	}
	b.failures++
	if b.failures >= q.Threshold {
		b.failures = 0
		b.openUntil.Store(now + q.Cooldown.Nanoseconds())
		return true
	}
	return false
}

// nowNanos is the breaker clock (wall clock; resolution requirements are
// millisecond-scale cooldowns).
func nowNanos() int64 { return time.Now().UnixNano() }

// runVariant executes variant idx on in with panic isolation and, when the
// policy sets a VariantTimeout or the context is cancellable, a bounded wait:
// the variant runs in its own goroutine and a timeout/cancel abandons it (the
// goroutine finishes in the background and its result is discarded — Go
// cannot preempt arbitrary code). With no timeout and a non-cancellable
// context the variant runs inline, so the fast path spawns nothing.
//
// A timeout yields a *VariantError wrapping ErrVariantTimeout (the variant's
// fault); a context cancellation yields ctx.Err() unwrapped (the caller's
// choice), which dispatch treats as "stop now", not "try the next variant".
func (cv *CodeVariant[In]) runVariant(ctx context.Context, idx int, in In) (float64, error) {
	v := &cv.variants[idx]
	timeout := cv.policy.VariantTimeout
	if timeout <= 0 && (ctx == nil || ctx.Done() == nil) {
		return safeCall(v.name, v.fn, in)
	}
	type outcome struct {
		val float64
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		val, err := safeCall(v.name, v.fn, in)
		ch <- outcome{val, err}
	}()
	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case o := <-ch:
		return o.val, o.err
	case <-timerC:
		return 0, &VariantError{Variant: v.name, Cause: ErrVariantTimeout}
	case <-done:
		return 0, ctx.Err()
	}
}

// exec runs variant idx under the breaker protocol and records statistics:
// success lands in the ordinary per-call counters (with the fallback flag),
// failure bumps the panic/timeout counters and feeds the breaker. Context
// cancellations are returned untyped and charged to nobody.
func (cv *CodeVariant[In]) exec(ctx context.Context, idx int, in In, featSeconds float64, fellBack bool) (float64, error) {
	v := &cv.variants[idx]
	qOn := cv.policy.Quarantine.Enabled() && v.br != nil
	acq := brClosed
	if qOn {
		acq = v.br.acquire(nowNanos())
	}
	value, err := cv.runVariant(ctx, idx, in)
	if err == nil {
		if qOn && v.br.onSuccess(acq) {
			cv.stats.recordRecovery()
		}
		cv.stats.record(v.name, &v.cnt, value, featSeconds, fellBack)
		return value, nil
	}
	var ve *VariantError
	if !errors.As(err, &ve) {
		// Context cancellation: not the variant's fault — no breaker penalty,
		// no failure counters.
		return 0, err
	}
	cv.stats.recordFailure(ve.Panicked, errors.Is(ve.Cause, ErrVariantTimeout))
	if qOn && v.br.onFailure(acq, nowNanos(), cv.policy.Quarantine) {
		cv.stats.recordTrip()
	}
	return 0, err
}

// selectable reports whether variant idx may be selected for in right now:
// its constraints pass and it is not quarantined. A half-open breaker counts
// as selectable — the execution path then claims the single probe.
func (cv *CodeVariant[In]) selectable(idx int, in In, now int64) bool {
	if !cv.Allowed(idx, in) {
		return false
	}
	if !cv.policy.Quarantine.Enabled() {
		return true
	}
	br := cv.variants[idx].br
	return br == nil || !br.open(now)
}

// firstFallback returns the first variant of the static fallback chain —
// default variant, then registration order — that passes ok, or -1.
func (cv *CodeVariant[In]) firstFallback(ok func(idx int) bool) int {
	if cv.defIdx >= 0 && ok(cv.defIdx) {
		return cv.defIdx
	}
	for i := range cv.variants {
		if i != cv.defIdx && ok(i) {
			return i
		}
	}
	return -1
}

// fallbackOrder returns the variants to try after the primary pick failed,
// in dispatch preference order: the model's remaining classes ranked by
// decision score, then the default variant, then registration order — each
// filtered by constraints and the tried set. Non-quarantined candidates come
// first; quarantined ones are appended as a last resort (executing a
// quarantined variant may still succeed, whereas skipping every candidate
// guarantees failure).
func (cv *CodeVariant[In]) fallbackOrder(in In, vec []float64, tried []bool, now int64) []int {
	var ranked []int
	if m := cv.model.p.Load(); m != nil {
		ranked = m.RankedClasses(vec)
	}
	var order []int
	seen := make([]bool, len(cv.variants))
	pass := func(filterQuarantine bool) {
		add := func(idx int) {
			if idx < 0 || idx >= len(cv.variants) || seen[idx] || tried[idx] {
				return
			}
			if !cv.Allowed(idx, in) {
				seen[idx] = true // constraints are input-deterministic: veto once
				return
			}
			if filterQuarantine && !cv.selectable(idx, in, now) {
				return // leave for the last-resort pass
			}
			seen[idx] = true
			order = append(order, idx)
		}
		for _, c := range ranked {
			add(c)
		}
		add(cv.defIdx)
		for i := range cv.variants {
			add(i)
		}
	}
	pass(true)
	if cv.policy.Quarantine.Enabled() {
		pass(false)
	}
	return order
}

// dispatchFallback walks the failure fallback chain after the primary
// variant failed with firstErr, recording one Fallbacks hop per attempt.
// It returns the first successful execution (value, chosen variant index and
// the number of hops walked), the context error if the caller cancelled
// mid-chain, or the last variant error when every candidate failed. The
// chosen index is -1 on error; the hop count is meaningful either way (the
// decision tracer records it).
func (cv *CodeVariant[In]) dispatchFallback(ctx context.Context, in In, vec []float64, featSeconds float64, failed int, pred int, firstErr error) (float64, int, int, error) {
	tried := make([]bool, len(cv.variants))
	tried[failed] = true
	lastErr := firstErr
	hops := 0
	for _, idx := range cv.fallbackOrder(in, vec, tried, nowNanos()) {
		if ctx != nil && ctx.Err() != nil {
			return 0, -1, hops, ctx.Err()
		}
		cv.stats.recordHop()
		hops++
		value, err := cv.exec(ctx, idx, in, featSeconds, true)
		if err == nil {
			cv.observe(in, vec, pred, idx, value, true)
			return value, idx, hops, nil
		}
		tried[idx] = true
		var ve *VariantError
		if !errors.As(err, &ve) {
			return 0, -1, hops, err // context cancellation: stop the chain
		}
		lastErr = err
	}
	return 0, -1, hops, lastErr
}

// FaultConfig configures WrapFault's seeded fault injection: per-call
// probabilities of panicking, aborting with ErrInjectedFault, or sleeping
// Delay before running the wrapped variant. Rates are checked in that order
// against a single uniform draw, so they are mutually exclusive and their
// sum must stay <= 1.
type FaultConfig struct {
	// PanicRate is the probability of an injected panic.
	PanicRate float64
	// ErrorRate is the probability of an injected Abort(ErrInjectedFault).
	ErrorRate float64
	// DelayRate is the probability of an injected sleep of Delay (simulating
	// a hang; pair with TuningPolicy.VariantTimeout < Delay to exercise the
	// timeout path).
	DelayRate float64
	// Delay is the injected sleep duration; defaults to 10ms.
	Delay time.Duration
	// Seed seeds the fault RNG, making serial runs reproducible.
	Seed int64
}

// ErrInjectedFault is the cause of error-mode failures injected by WrapFault.
var ErrInjectedFault = errors.New("core: injected fault")

// WrapFault wraps fn with seeded fault injection per cfg — the harness the
// robustness stress tests and `nitro-tune -inject-faults` use to demonstrate
// graceful degradation. Draws come from one mutex-guarded PCG stream, so a
// serial run with a fixed seed replays the same fault sequence; concurrent
// callers see a scheduling-dependent interleaving of the same stream.
func WrapFault[In any](fn VariantFn[In], cfg FaultConfig) VariantFn[In] {
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x6e6974726f)) // "nitro"
	return func(in In) float64 {
		mu.Lock()
		p := rng.Float64()
		mu.Unlock()
		switch {
		case p < cfg.PanicRate:
			panic(fmt.Sprintf("injected fault (draw %.4f)", p))
		case p < cfg.PanicRate+cfg.ErrorRate:
			Abort(ErrInjectedFault)
		case p < cfg.PanicRate+cfg.ErrorRate+cfg.DelayRate:
			d := cfg.Delay
			if d <= 0 {
				d = 10 * time.Millisecond
			}
			time.Sleep(d)
		}
		return fn(in)
	}
}

// WrapVariants replaces every registered variant function with
// wrap(name, fn); returning fn unchanged leaves that variant as-is. It is
// the hook the fault-injection harness uses to wrap selected variants after
// registration (e.g. on a replay variant whose closures are built
// internally). Like the other registration methods it is a setup-phase
// operation: call it before the CodeVariant serves concurrent traffic.
func (cv *CodeVariant[In]) WrapVariants(wrap func(name string, fn VariantFn[In]) VariantFn[In]) {
	for i := range cv.variants {
		cv.variants[i].fn = wrap(cv.variants[i].name, cv.variants[i].fn)
	}
}
