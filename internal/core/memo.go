package core

import (
	"math"
	"sync/atomic"

	"nitro/internal/ml"
)

// This file is the memoization tier of the dispatch ladder: a bounded,
// direct-mapped, lock-free cache from feature-vector fingerprint to the
// model's raw prediction. Repeat callers — the common case the "A Few Fit
// Most" observation predicts — skip the scaler and kernel entirely and pay
// one hash plus one atomic pointer load.
//
// Correctness model:
//
//   - The cache memoizes ONLY the model's raw prediction, never the dispatch
//     outcome. Constraints and quarantine (selectable) are re-checked on
//     every call, so a memo hit can never dispatch a variant a full predict
//     path would have rejected.
//   - Entries are keyed by the exact feature vector (fingerprint plus full
//     equality check, so hash collisions can never alias two inputs) AND by
//     two epochs: the model slot's install epoch and the function's
//     quarantine epoch. SetModel and every breaker trip/recovery bump their
//     epoch, which instantly invalidates every cached entry without touching
//     the cache itself.
//   - Epochs are read BEFORE the model pointer on the predict path. A store
//     racing a hot-swap can therefore only under-stamp its entry (epoch read
//     before the swap, prediction computed from the new model) — such an
//     entry is conservatively treated as stale and recomputed. Reading the
//     epoch after the model load could over-stamp a stale prediction as
//     fresh, which would serve old-model picks after a swap; the ordering
//     makes that impossible. Go's atomics are sequentially consistent, so a
//     call that starts after SetModel returns must observe the bumped epoch.
type memoCache struct {
	mask  uint64
	slots []atomic.Pointer[memoEntry]
}

// memoEntry is one immutable cache cell: published with an atomic pointer
// store, never mutated afterwards, so readers need no locks.
type memoEntry struct {
	hash   uint64
	mEpoch uint64 // model-install epoch the prediction was computed under
	qEpoch uint64 // quarantine epoch ditto
	vec    []float64
	pred   int32
}

// defaultMemoSize is the default slot count (power of two).
const defaultMemoSize = 1024

// newMemoCache builds a cache with at least size slots (rounded up to a
// power of two; size <= 0 selects the default).
func newMemoCache(size int) *memoCache {
	if size <= 0 {
		size = defaultMemoSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &memoCache{mask: uint64(n - 1), slots: make([]atomic.Pointer[memoEntry], n)}
}

// memoHash fingerprints a feature vector: FNV-1a folded over the float64
// bit patterns, word at a time, then avalanched. The finalizer is load-
// bearing for the direct-mapped cache: multiplication only propagates bits
// upward, so without it vectors differing only in exponent/high-mantissa
// bits (0.0, 1.0, 2.0, ...) share their low bits and collapse onto one
// slot, evicting each other. Residual collisions are tolerable — lookup
// verifies full vector equality.
func memoHash(vec []float64) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, v := range vec {
		h = (h ^ math.Float64bits(v)) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// lookup returns the memoized prediction for vec computed under exactly the
// given epochs, when present. NaN features never match themselves, so such
// vectors simply always miss.
func (c *memoCache) lookup(h uint64, vec []float64, mEpoch, qEpoch uint64) (int, bool) {
	e := c.slots[h&c.mask].Load()
	if e == nil || e.hash != h || e.mEpoch != mEpoch || e.qEpoch != qEpoch || len(e.vec) != len(vec) {
		return 0, false
	}
	for i, v := range vec {
		if e.vec[i] != v {
			return 0, false
		}
	}
	return int(e.pred), true
}

// store publishes a prediction computed under the given epochs. The vector is
// copied: callers recycle their feature buffers.
func (c *memoCache) store(h uint64, vec []float64, pred int, mEpoch, qEpoch uint64) {
	c.slots[h&c.mask].Store(&memoEntry{
		hash:   h,
		mEpoch: mEpoch,
		qEpoch: qEpoch,
		vec:    append([]float64(nil), vec...),
		pred:   int32(pred),
	})
}

// prediction is a model prediction precomputed by the batched CallConcurrent
// path and threaded into dispatch, so phase 3 consumes it instead of
// re-predicting per input.
type prediction struct {
	pred int
	tier ml.Tier
	// cs is non-nil when the prediction was served by an installed canary
	// challenger; dispatch accounts the call's outcome on it.
	cs *canaryCell
}
