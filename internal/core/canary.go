// Canary deployment: serve a challenger model to a configured fraction of
// traffic through the regular dispatch ladder, without touching the stable
// model slot.
//
// A canary rides the same per-function modelSlot the hot-swap machinery
// uses: one extra atomic pointer holds the challenger, and predictVec draws
// per call (lock-free, on math/rand/v2's per-thread generator) whether this
// call is served by the challenger or by the stable tiers. Canary-served
// predictions bypass the memo cache in both directions — they never read a
// stable-model entry and never poison the cache with challenger predictions
// — so clearing or promoting a canary needs no epoch bump and invalidates
// nothing.
//
// The cell keeps its own atomic calls/failures counters: a canary-served
// call counts as failed when its pick was vetoed or quarantined at selection
// time (the runtime fell back), or when the executed variant panicked, timed
// out or aborted. Those counters are what a rollout controller (the
// internal/server poller) reports fleet-wide to decide promotion vs
// rollback. A caller-cancelled context counts neither way — it says nothing
// about the challenger.
package core

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"nitro/internal/ml"
)

// canaryCell is one function's challenger deployment: the model, the traffic
// fraction it serves, and the outcome counters. The cell is immutable except
// for the counters, so readers need no lock; install/clear swaps the whole
// cell atomically.
type canaryCell struct {
	model    *ml.Model
	fraction float64
	calls    atomic.Int64
	failures atomic.Int64
}

// admit draws whether one call is served by the challenger.
func (c *canaryCell) admit() bool {
	if c.fraction >= 1 {
		return true
	}
	if c.fraction <= 0 {
		return false
	}
	return rand.Float64() < c.fraction
}

// record accounts one canary-served dispatch outcome.
func (c *canaryCell) record(failed bool) {
	c.calls.Add(1)
	if failed {
		c.failures.Add(1)
	}
}

// CanaryStats snapshots one function's canary deployment.
type CanaryStats struct {
	// Active reports whether a challenger is installed.
	Active bool `json:"active"`
	// Version is the challenger model's stamped version (0 when unstamped
	// or inactive).
	Version int `json:"version"`
	// Fraction is the traffic share the challenger serves.
	Fraction float64 `json:"fraction"`
	// Calls / Failures count canary-served dispatches and how many of them
	// failed (selection fallback or variant failure).
	Calls    int64 `json:"calls"`
	Failures int64 `json:"failures"`
}

// SetCanary installs m as the named function's challenger, served to the
// given fraction of calls (clamped to [0, 1]) through the regular dispatch
// ladder; the stable model keeps serving the rest. The install is atomic and
// validated exactly like SetModel; installing over an existing canary
// replaces it and resets its counters. The stable slot is untouched — a
// canary is promoted by SetModel + ClearCanary, and rolled back by
// ClearCanary alone.
func (cx *Context) SetCanary(fn string, m *ml.Model, fraction float64) error {
	if m == nil {
		return fmt.Errorf("core: install canary for %q: nil model", fn)
	}
	if err := cx.validateModel(fn, m); err != nil {
		return fmt.Errorf("core: install canary for %q: %w", fn, err)
	}
	if fraction < 0 {
		fraction = 0
	} else if fraction > 1 {
		fraction = 1
	}
	cx.slotFor(fn).canary.Store(&canaryCell{model: m, fraction: fraction})
	return nil
}

// ClearCanary removes the named function's challenger (no-op when none is
// installed); subsequent calls are all served by the stable model.
func (cx *Context) ClearCanary(fn string) {
	cx.slotFor(fn).canary.Store(nil)
}

// CanaryModel returns the installed challenger model, if any.
func (cx *Context) CanaryModel(fn string) (*ml.Model, bool) {
	c := cx.slotFor(fn).canary.Load()
	if c == nil {
		return nil, false
	}
	return c.model, true
}

// CanaryStats snapshots the named function's canary deployment counters.
func (cx *Context) CanaryStats(fn string) CanaryStats {
	c := cx.slotFor(fn).canary.Load()
	if c == nil {
		return CanaryStats{}
	}
	return CanaryStats{
		Active:   true,
		Version:  c.model.Version(),
		Fraction: c.fraction,
		Calls:    c.calls.Load(),
		Failures: c.failures.Load(),
	}
}
