package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// okTransport is a fault-free inner transport returning a fixed body.
type okTransport struct{ body string }

func (t okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{},
		Body:          io.NopCloser(strings.NewReader(t.body)),
		ContentLength: int64(len(t.body)),
		Request:       req,
	}, nil
}

func mustReq(t *testing.T) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://chaos.invalid/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// outcome classifies one RoundTrip result for determinism comparison.
func outcome(t *testing.T, tr *Transport) string {
	t.Helper()
	resp, err := tr.RoundTrip(mustReq(t))
	if err != nil {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("non-injected error from chaos transport: %v", err)
		}
		return "drop"
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return "503"
	case rerr != nil:
		return "reset"
	case string(data) != "hello, fleet":
		return "corrupt"
	default:
		return "pass"
	}
}

// TestSeededDeterminism: equal seeds replay the exact same fault sequence;
// a different seed diverges.
func TestSeededDeterminism(t *testing.T) {
	pol := Policy{Seed: 7, DropRate: 0.2, Rate5xx: 0.2, CorruptRate: 0.15, ResetRate: 0.15, DelayRate: 0.1,
		Delay: time.Microsecond}
	run := func(seed int64) []string {
		tr := New(okTransport{body: "hello, fleet"}, Policy{Seed: seed, DropRate: pol.DropRate,
			Rate5xx: pol.Rate5xx, CorruptRate: pol.CorruptRate, ResetRate: pol.ResetRate,
			DelayRate: pol.DelayRate, Delay: pol.Delay})
		var out []string
		for i := 0; i < 60; i++ {
			out = append(out, outcome(t, tr))
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical 60-request fault sequences")
	}
	// The mix must actually contain injected faults, or the harness is inert.
	kinds := map[string]bool{}
	for _, k := range a {
		kinds[k] = true
	}
	for _, want := range []string{"drop", "503", "corrupt", "reset", "pass"} {
		if !kinds[want] {
			t.Fatalf("60-request run at these rates never produced %q: %v", want, a)
		}
	}
}

// Test503BurstAndRetryAfter: a 5xx draw yields BurstLen consecutive 503s,
// each carrying the policy's Retry-After hint.
func Test503BurstAndRetryAfter(t *testing.T) {
	tr := New(okTransport{body: "x"}, Policy{Seed: 1, Rate5xx: 1, BurstLen: 3, RetryAfter: 1500 * time.Millisecond})
	for i := 0; i < 6; i++ {
		resp, err := tr.RoundTrip(mustReq(t))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("request %d: Retry-After %q, want \"2\" (1.5s rounded up)", i, ra)
		}
		resp.Body.Close()
	}
	if st := tr.Stats(); st.Faults5xx != 6 || st.Passed != 0 {
		t.Fatalf("stats %v, want six 503s and no pass-throughs", st)
	}
}

// TestCorruptionFlipsExactlyOneByte: corrupted bodies differ from the
// original in exactly one position (so ETag checks must catch them).
func TestCorruptionFlipsExactlyOneByte(t *testing.T) {
	const body = "content-addressed artifact bytes"
	tr := New(okTransport{body: body}, Policy{Seed: 3, CorruptRate: 1})
	resp, err := tr.RoundTrip(mustReq(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range body {
		if got[i] != body[i] {
			diffs++
		}
	}
	if len(got) != len(body) || diffs != 1 {
		t.Fatalf("corruption changed %d bytes (len %d vs %d), want exactly 1", diffs, len(got), len(body))
	}
}

// TestResetSeversBodyMidRead: the read fails with ErrInjected after a
// partial transfer, never a clean EOF.
func TestResetSeversBodyMidRead(t *testing.T) {
	body := strings.Repeat("A", 1024)
	tr := New(okTransport{body: body}, Policy{Seed: 5, ResetRate: 1})
	resp, err := tr.RoundTrip(mustReq(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("read error %v, want injected reset", err)
	}
	if len(got) == 0 || len(got) >= len(body) {
		t.Fatalf("reset delivered %d of %d bytes, want a strict partial prefix", len(got), len(body))
	}
}

// TestPartition: while partitioned every request fails typed and consumes
// no RNG draws, so the post-heal sequence matches an unpartitioned replay.
func TestPartition(t *testing.T) {
	pol := Policy{Seed: 11, DropRate: 0.3, Rate5xx: 0.3}
	healthy := New(okTransport{body: "hello, fleet"}, pol)
	var want []string
	for i := 0; i < 20; i++ {
		want = append(want, outcome(t, healthy))
	}

	chaotic := New(okTransport{body: "hello, fleet"}, pol)
	chaotic.Partition(true)
	for i := 0; i < 17; i++ {
		_, err := chaotic.RoundTrip(mustReq(t))
		if !errors.Is(err, ErrPartitioned) || !errors.Is(err, ErrInjected) {
			t.Fatalf("partitioned request %d: err %v, want ErrPartitioned", i, err)
		}
	}
	if !chaotic.Partitioned() {
		t.Fatal("Partitioned() false while partitioned")
	}
	chaotic.Partition(false)
	var got []string
	for i := 0; i < 20; i++ {
		got = append(got, outcome(t, chaotic))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-heal sequence diverged from unpartitioned replay:\n%v\n%v", got, want)
	}
	if st := chaotic.Stats(); st.Partitioned != 17 {
		t.Fatalf("stats %v, want 17 partition drops", st)
	}
}

// TestWrapListenerAbortsConnections: an abort-everything listener yields
// client-visible connection failures; a zero-rate listener passes through.
func TestWrapListenerAbortsConnections(t *testing.T) {
	newServer := func(rate float64) (*httptest.Server, net.Listener) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		wrapped := WrapListener(ln, ListenerPolicy{Seed: 1, AbortRate: rate})
		hs := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "served")
		}))
		hs.Listener.Close()
		hs.Listener = wrapped
		hs.Start()
		return hs, wrapped
	}

	hs, ln := newServer(1)
	defer hs.Close()
	// Fresh connection per request so every attempt hits Accept.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 2 * time.Second}
	if _, err := client.Get(hs.URL); err == nil {
		t.Fatal("request through an abort-everything listener succeeded")
	}
	if Aborted(ln) == 0 {
		t.Fatal("listener reported no aborted connections")
	}

	ok, _ := newServer(0)
	defer ok.Close()
	resp, err := client.Get(ok.URL)
	if err != nil {
		t.Fatalf("zero-rate listener: %v", err)
	}
	resp.Body.Close()
}
