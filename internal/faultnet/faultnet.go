// Package faultnet injects deterministic, seeded network faults into HTTP
// traffic. It is the wire-level counterpart of core.WrapFault: where the
// variant harness proves the dispatch runtime degrades gracefully when
// *code* misbehaves, faultnet proves the registry protocol degrades
// gracefully when the *network* misbehaves — dropped requests, injected
// latency, connections reset mid-body, 5xx bursts (with or without a
// Retry-After hint), full partitions, and corrupted response bytes.
//
// All randomness comes from one mutex-guarded seeded PCG stream, so a
// serial driver with a fixed seed replays the exact same fault sequence on
// every run. The chaos smoke (`nitro-server -smoke-chaos`) depends on this:
// it runs the whole kill-restart-resume lifecycle twice and diffs the
// transcripts byte for byte.
//
// Transport wraps an http.RoundTripper (the client side of the wire);
// WrapListener wraps a net.Listener (the server side), aborting a seeded
// fraction of accepted connections before a single byte is served.
package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root cause of every fault the harness injects; use
// errors.Is to distinguish chaos from real infrastructure failures in tests.
var ErrInjected = errors.New("faultnet: injected network fault")

// ErrPartitioned marks requests refused because the transport is currently
// partitioned from the server.
var ErrPartitioned = fmt.Errorf("%w: network partition", ErrInjected)

// Policy configures the seeded fault mix. Rates are per-request
// probabilities checked in declaration order against a single uniform draw
// (like core.FaultConfig), so they are mutually exclusive and their sum
// must stay <= 1; the remainder of the probability mass passes the request
// through untouched.
type Policy struct {
	// Seed seeds the fault RNG; equal seeds replay equal fault sequences
	// under a serial driver.
	Seed int64
	// DropRate is the probability the request fails with a transport error
	// before reaching the server (a dropped packet / refused connection).
	DropRate float64
	// Rate5xx is the probability of a synthetic 503 burst: the server is
	// never contacted, and BurstLen-1 subsequent requests also 503.
	Rate5xx float64
	// BurstLen is the length of a 503 burst (default 1: isolated errors).
	BurstLen int
	// RetryAfter, when > 0, is advertised (rounded up to whole seconds) in
	// a Retry-After header on every synthetic 503.
	RetryAfter time.Duration
	// CorruptRate is the probability a successful response body has one
	// byte flipped in flight (exercises ETag verification on pulls).
	CorruptRate float64
	// ResetRate is the probability the response body is severed partway
	// through the read (connection reset mid-transfer).
	ResetRate float64
	// DelayRate / Delay inject latency before forwarding (default 2ms).
	DelayRate float64
	Delay     time.Duration
}

// Stats counts what the harness actually injected, so chaos tests can
// assert the run exercised real faults instead of passing vacuously.
type Stats struct {
	Requests    int64
	Drops       int64
	Faults5xx   int64
	Corruptions int64
	Resets      int64
	Delays      int64
	Partitioned int64
	Passed      int64
}

func (s Stats) String() string {
	return fmt.Sprintf("requests=%d drops=%d 5xx=%d corrupt=%d resets=%d delays=%d partitioned=%d passed=%d",
		s.Requests, s.Drops, s.Faults5xx, s.Corruptions, s.Resets, s.Delays, s.Partitioned, s.Passed)
}

// Transport is a chaos-injecting http.RoundTripper. Safe for concurrent
// use; under a serial driver the fault sequence is a pure function of the
// seed and the request count.
type Transport struct {
	inner http.RoundTripper
	pol   Policy

	mu        sync.Mutex
	rng       *rand.Rand
	burstLeft int

	partitioned atomic.Bool

	requests    atomic.Int64
	drops       atomic.Int64
	faults5xx   atomic.Int64
	corruptions atomic.Int64
	resets      atomic.Int64
	delays      atomic.Int64
	partDrops   atomic.Int64
	passed      atomic.Int64
}

// New wraps inner (nil: http.DefaultTransport) with fault injection.
func New(inner http.RoundTripper, pol Policy) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if pol.BurstLen < 1 {
		pol.BurstLen = 1
	}
	if pol.Delay <= 0 {
		pol.Delay = 2 * time.Millisecond
	}
	return &Transport{
		inner: inner,
		pol:   pol,
		rng:   rand.New(rand.NewPCG(uint64(pol.Seed), 0x66617578)), // "faux"
	}
}

// Partition toggles a full partition: while on, every request fails with
// ErrPartitioned without consuming RNG draws, so the post-heal fault
// sequence stays aligned with an unpartitioned replay.
func (t *Transport) Partition(on bool) { t.partitioned.Store(on) }

// Partitioned reports the current partition state.
func (t *Transport) Partitioned() bool { return t.partitioned.Load() }

// Stats snapshots the injected-fault counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:    t.requests.Load(),
		Drops:       t.drops.Load(),
		Faults5xx:   t.faults5xx.Load(),
		Corruptions: t.corruptions.Load(),
		Resets:      t.resets.Load(),
		Delays:      t.delays.Load(),
		Partitioned: t.partDrops.Load(),
		Passed:      t.passed.Load(),
	}
}

// fault kinds decided under the RNG lock, acted on outside it.
type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	fault5xx
	faultCorrupt
	faultReset
	faultDelay
)

// RoundTrip injects at most one fault per request, then (for pass-through
// kinds) forwards to the inner transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	if t.partitioned.Load() {
		t.partDrops.Add(1)
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: ErrPartitioned}
	}

	t.mu.Lock()
	kind := faultNone
	corruptDraw := 0.0
	if t.burstLeft > 0 {
		t.burstLeft--
		kind = fault5xx
	} else {
		p := t.rng.Float64()
		pol := t.pol
		switch {
		case p < pol.DropRate:
			kind = faultDrop
		case p < pol.DropRate+pol.Rate5xx:
			kind = fault5xx
			t.burstLeft = pol.BurstLen - 1
		case p < pol.DropRate+pol.Rate5xx+pol.CorruptRate:
			kind = faultCorrupt
			corruptDraw = t.rng.Float64()
		case p < pol.DropRate+pol.Rate5xx+pol.CorruptRate+pol.ResetRate:
			kind = faultReset
		case p < pol.DropRate+pol.Rate5xx+pol.CorruptRate+pol.ResetRate+pol.DelayRate:
			kind = faultDelay
		}
	}
	t.mu.Unlock()

	switch kind {
	case faultDrop:
		t.drops.Add(1)
		return nil, &net.OpError{Op: "write", Net: "tcp", Err: fmt.Errorf("%w: dropped request", ErrInjected)}
	case fault5xx:
		t.faults5xx.Add(1)
		return t.synth503(req), nil
	case faultDelay:
		t.delays.Add(1)
		time.Sleep(t.pol.Delay)
	}

	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	switch kind {
	case faultCorrupt:
		t.corruptions.Add(1)
		return corruptResponse(resp, corruptDraw)
	case faultReset:
		t.resets.Add(1)
		resp.Body = &resettingBody{inner: resp.Body, remaining: resetAfterBytes(resp.ContentLength)}
		return resp, nil
	}
	t.passed.Add(1)
	return resp, nil
}

// synth503 fabricates a Service Unavailable response without contacting
// the server, carrying the policy's Retry-After hint.
func (t *Transport) synth503(req *http.Request) *http.Response {
	h := http.Header{}
	h.Set("Content-Type", "application/json; charset=utf-8")
	if t.pol.RetryAfter > 0 {
		secs := int64(math.Ceil(t.pol.RetryAfter.Seconds()))
		h.Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	body := `{"error":"faultnet: injected 503 burst"}`
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// corruptResponse reads the full body and flips one byte at a
// draw-determined offset. An empty body passes through unchanged.
func corruptResponse(resp *http.Response, draw float64) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(data) > 0 {
		data[int(draw*float64(len(data)))%len(data)] ^= 0xFF
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	return resp, nil
}

// resetAfterBytes picks how much of a body survives before the injected
// reset: half of a known Content-Length, else a small fixed prefix.
func resetAfterBytes(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 64
}

// resettingBody serves a prefix of the real body, then fails the read.
type resettingBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *resettingBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("%w: connection reset mid-body", ErrInjected)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended before the cut point; deliver the reset anyway
		// so the caller sees a truncated transfer, not a clean EOF.
		return n, fmt.Errorf("%w: connection reset mid-body", ErrInjected)
	}
	return n, err
}

func (b *resettingBody) Close() error { return b.inner.Close() }

// ListenerPolicy configures server-side connection chaos.
type ListenerPolicy struct {
	// Seed seeds the abort RNG.
	Seed int64
	// AbortRate is the probability an accepted connection is closed
	// immediately, before any bytes are served (the client observes a
	// reset / EOF on an established connection).
	AbortRate float64
}

// WrapListener wraps ln so a seeded fraction of accepted connections are
// aborted at the wire. Pass the result to any HTTP server; aborted
// connections never reach a handler.
func WrapListener(ln net.Listener, pol ListenerPolicy) net.Listener {
	return &chaosListener{
		Listener: ln,
		pol:      pol,
		rng:      rand.New(rand.NewPCG(uint64(pol.Seed), 0x6c697374)), // "list"
	}
}

type chaosListener struct {
	net.Listener
	pol ListenerPolicy

	mu  sync.Mutex
	rng *rand.Rand

	// Aborted counts connections killed at accept.
	aborted atomic.Int64
}

func (l *chaosListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		abort := l.rng.Float64() < l.pol.AbortRate
		l.mu.Unlock()
		if !abort {
			return conn, nil
		}
		l.aborted.Add(1)
		conn.Close()
	}
}

// Aborted reports how many accepted connections the listener killed.
func Aborted(ln net.Listener) int64 {
	if cl, ok := ln.(*chaosListener); ok {
		return cl.aborted.Load()
	}
	return 0
}
