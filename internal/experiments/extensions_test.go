package experiments

import (
	"strings"
	"testing"

	"nitro/internal/autotuner"
	"nitro/internal/datasets"
	"nitro/internal/gpusim"
)

func TestExtensionExperiment(t *testing.T) {
	_, opts, dev := buildSmall(t)
	rows, err := Extension(opts, dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want SpMV, Solvers and BFS rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.OracleSpeedup < 0.999 {
			t.Errorf("%s: extended oracle (%v) should never be slower than base oracle", r.Benchmark, r.OracleSpeedup)
		}
		if r.BasePerf <= 0 || r.ExtPerf <= 0 {
			t.Errorf("%s: missing perf numbers: %+v", r.Benchmark, r)
		}
		if len(r.NewVariantNames) == 0 {
			t.Errorf("%s: no new variants recorded", r.Benchmark)
		}
	}
	// The SpMV corpus contains power-law matrices where COO/HYB win, so the
	// extended oracle must strictly improve there.
	if rows[0].OracleSpeedup <= 1.001 {
		t.Errorf("SpMV extended oracle speedup %v — COO/HYB never won?", rows[0].OracleSpeedup)
	}
	if s := FormatExtension(rows); !strings.Contains(s, "COO") || !strings.Contains(s, "GMRES") {
		t.Error("format missing variant names")
	}
}

func TestPortabilityExperiment(t *testing.T) {
	_, opts, dev := buildSmall(t)
	res, err := Portability(opts, dev, gpusim.Kepler())
	if err != nil {
		t.Fatal(err)
	}
	if res.StalePerf <= 0 || res.NativePerf <= 0 {
		t.Fatalf("missing perf: %+v", res)
	}
	if res.NativePerf+0.05 < res.StalePerf {
		t.Errorf("native model (%v) should not lose clearly to the stale one (%v)", res.NativePerf, res.StalePerf)
	}
	if res.LabelShift < 0 || res.LabelShift > 1 {
		t.Errorf("label shift out of range: %v", res.LabelShift)
	}
	if s := FormatPortability(res); !strings.Contains(s, "K20c") {
		t.Error("format missing device name")
	}
}

func TestPortabilitySameDeviceIsNoop(t *testing.T) {
	_, opts, dev := buildSmall(t)
	res, err := Portability(opts, dev, dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelShift != 0 {
		t.Errorf("same device must not shift labels: %v", res.LabelShift)
	}
	if res.StalePerf != res.NativePerf {
		t.Errorf("same device must give identical perfs: %v vs %v", res.StalePerf, res.NativePerf)
	}
}

func TestCSVExports(t *testing.T) {
	suites, opts, dev := buildSmall(t)
	var buf strings.Builder

	rows5, err := Fig5(suites[:2], opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig5CSV(&buf, rows5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "benchmark,variant,perf_vs_best") {
		t.Error("fig5 CSV header missing")
	}
	if !strings.Contains(buf.String(), "Nitro") {
		t.Error("fig5 CSV missing Nitro row")
	}

	buf.Reset()
	rows6, err := Fig6(suites, opts, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig6CSV(&buf, rows6); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 6 { // header + 5 rows
		t.Errorf("fig6 CSV has %d lines, want 6", got)
	}

	buf.Reset()
	curves, err := Fig7(suites[:1], opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig7CSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "iteration") {
		t.Error("fig7 CSV header missing")
	}

	buf.Reset()
	rows8, err := Fig8(suites[:1], opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig8CSV(&buf, rows8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cum_cost_frac") {
		t.Error("fig8 CSV header missing")
	}

	buf.Reset()
	if err := WriteSetupCSV(&buf, Setup(suites)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "num_variants") {
		t.Error("setup CSV header missing")
	}
	if CSVName("fig5") != "nitro_fig5.csv" {
		t.Error("CSVName wrong")
	}
}

func TestClassifierComparison(t *testing.T) {
	suites, opts, _ := buildSmall(t)
	rows, err := ClassifierComparison(suites[:2], opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Classifiers) != 4 || len(r.MeanPerf) != 4 || len(r.ExactRate) != 4 {
			t.Fatalf("%s: incomplete row %+v", r.Benchmark, r)
		}
		for i, p := range r.MeanPerf {
			if p < 0.3 || p > 1.0001 {
				t.Errorf("%s/%s: implausible perf %v", r.Benchmark, r.Classifiers[i], p)
			}
		}
	}
	if s := FormatClassifierComparison(rows); !strings.Contains(s, "logistic") {
		t.Error("format missing classifier column")
	}
	var buf strings.Builder
	if err := WriteClassifierCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exact_rate") {
		t.Error("CSV header missing")
	}
}

func TestNoiseRobustness(t *testing.T) {
	suites, opts, _ := buildSmall(t)
	rows, err := NoiseRobustness(suites[:2], opts, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.MeanPerf) != 2 || len(r.LabelFlips) != 2 {
			t.Fatalf("%s: incomplete row %+v", r.Benchmark, r)
		}
		if r.LabelFlips[0] != 0 {
			t.Errorf("%s: sigma=0 flipped labels (%v)", r.Benchmark, r.LabelFlips[0])
		}
		if r.LabelFlips[1] <= 0 {
			t.Errorf("%s: sigma=0.3 flipped no labels", r.Benchmark)
		}
		// Graceful degradation: heavy noise shouldn't collapse below 50%.
		if r.MeanPerf[1] < 0.5 {
			t.Errorf("%s: perf collapsed to %v under noise", r.Benchmark, r.MeanPerf[1])
		}
	}
	if s := FormatNoise(rows); !strings.Contains(s, "sigma") {
		t.Error("format missing sigma header")
	}
}

// TestHeadlineModerate asserts the paper's abstract claim — Nitro above 93%
// of exhaustive search on every benchmark — on paper-sized corpora at
// reduced instance scale. Skipped under -short.
func TestHeadlineModerate(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale headline check skipped in -short mode")
	}
	opts := Options{
		Cfg:   datasets.Config{Seed: 42, Scale: 0.3},
		Train: autotuner.TrainOptions{Classifier: "svm"},
	}
	dev := gpusim.Fermi()
	suites, err := BuildSuites(opts, dev)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Headline(suites, opts, dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range h.Rows {
		if r.MeanPerf < 0.90 {
			t.Errorf("%s: %0.2f%% of exhaustive search — below the reproduction bar", r.Benchmark, 100*r.MeanPerf)
		}
	}
	if h.MinPerf < 0.90 || h.AvgPerf < 0.93 {
		t.Errorf("headline missed: avg %.2f%% min %.2f%% (paper: >93%%)", 100*h.AvgPerf, 100*h.MinPerf)
	}
	// Hybrid comparison shape: Nitro above Hybrid, Hybrid clearly below 1.
	for _, r := range h.Rows {
		if r.Benchmark == "BFS" {
			if r.NitroOverHybrid < 1.0 {
				t.Errorf("Nitro (%vx) should beat Hybrid", r.NitroOverHybrid)
			}
			if r.HybridPerf > 0.97 {
				t.Errorf("Hybrid (%v) should trail the oracle visibly", r.HybridPerf)
			}
		}
	}
}
