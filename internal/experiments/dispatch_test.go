package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nitro/internal/autotuner"
	"nitro/internal/datasets"
	"nitro/internal/gpusim"
)

// dispatchOpts is the agreement-gate corpus configuration: the same five
// benchmarks CI distills, at the reduced scale the gate is enforced on.
func dispatchOpts() Options {
	return Options{
		Cfg:   datasets.Config{Seed: 42, Scale: 0.2, TrainCount: 24, TestCount: 36},
		Train: autotuner.TrainOptions{Classifier: "svm"},
	}
}

// TestCompiledAgreementCorpora is the CI agreement gate: every benchmark's
// tuned model must distill into a compiled artifact whose served choices
// agree with the exact classifier on >= 99% of the training corpus. Distill
// itself enforces the gate (rejection is an error), so a single failing
// benchmark fails this test with the distiller's reason.
func TestCompiledAgreementCorpora(t *testing.T) {
	opts := dispatchOpts()
	suites, err := BuildSuites(opts, gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Dispatch(suites, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Agreement < 0.99 {
			t.Errorf("%s: agreement %.4f below the 0.99 gate", r.Benchmark, r.Agreement)
		}
		if r.FallbackRate > 0.5 {
			t.Errorf("%s: fallback rate %.2f above the 0.5 cap", r.Benchmark, r.FallbackRate)
		}
		// A single-leaf program is valid when one variant dominates the whole
		// corpus (the exact model is constant there too) — only an empty
		// program is malformed.
		if r.Nodes == 0 {
			t.Errorf("%s: empty compiled program", r.Benchmark)
		}
		if r.MemoNs != 0 || r.CompiledNs != 0 || r.ExactNs != 0 {
			t.Errorf("%s: timings should be zero with calls=0", r.Benchmark)
		}
	}
	text := FormatDispatch(rows)
	for _, want := range []string{"SpMV", "Sort", "agreement", "compiled"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}

// TestDispatchTiming runs the timing harness at a tiny iteration count on one
// suite and checks the JSON artifact shape — the wall-clock numbers
// themselves are machine-dependent and not asserted.
func TestDispatchTiming(t *testing.T) {
	suites, opts, _ := buildSmall(t)
	rows, err := Dispatch(suites[:1], opts, 200)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.MemoNs <= 0 || r.CompiledNs <= 0 || r.ExactNs <= 0 {
		t.Fatalf("expected positive per-tier timings, got %+v", r)
	}
	var buf bytes.Buffer
	if err := WriteDispatchJSON(&buf, rows, 200); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		MinAgreement float64       `json:"min_agreement"`
		Calls        int           `json:"calls_per_tier"`
		Rows         []DispatchRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.MinAgreement != 0.99 || rep.Calls != 200 || len(rep.Rows) != 1 {
		t.Errorf("artifact metadata wrong: %+v", rep)
	}
	if rep.Rows[0] != r {
		t.Errorf("row did not round-trip: %+v != %+v", rep.Rows[0], r)
	}
}
