package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"nitro/internal/autotuner"
)

// NoiseRow reports selection quality when training-time measurements carry
// multiplicative noise. The paper tunes on real (noisy) GPU timings; the
// simulator is deterministic, so this study reintroduces measurement noise
// at training time only — labels near ties flip, test evaluation stays
// clean — to check that the learned selection degrades gracefully.
type NoiseRow struct {
	Benchmark string
	// Sigmas are the relative noise levels applied to training times.
	Sigmas []float64
	// MeanPerf[i] is clean-test performance with training noise Sigmas[i].
	MeanPerf []float64
	// LabelFlips[i] is the fraction of training labels changed by the noise.
	LabelFlips []float64
}

// perturbTimes returns instances whose finite times are scaled by
// exp(sigma*N(0,1)) with a seeded generator.
func perturbTimes(instances []autotuner.Instance, sigma float64, rng *rand.Rand) []autotuner.Instance {
	out := make([]autotuner.Instance, len(instances))
	for i, in := range instances {
		times := make([]float64, len(in.Times))
		for v, t := range in.Times {
			if math.IsInf(t, 1) {
				times[v] = t
				continue
			}
			times[v] = t * math.Exp(sigma*rng.NormFloat64())
		}
		out[i] = autotuner.Instance{ID: in.ID, Features: in.Features, Times: times}
	}
	return out
}

// NoiseRobustness trains on noise-perturbed labels at each sigma and
// evaluates on the clean test corpus.
func NoiseRobustness(suites []*autotuner.Suite, opts Options, sigmas []float64) ([]NoiseRow, error) {
	opts = opts.Norm()
	if len(sigmas) == 0 {
		sigmas = []float64{0, 0.05, 0.1, 0.2, 0.4}
	}
	out := make([]NoiseRow, 0, len(suites))
	for _, s := range suites {
		row := NoiseRow{Benchmark: s.Name, Sigmas: sigmas}
		cleanLabels := make([]int, len(s.Train))
		for i, in := range s.Train {
			cleanLabels[i], _ = in.Best()
		}
		for si, sigma := range sigmas {
			rng := rand.New(rand.NewSource(opts.Cfg.Seed + int64(si)*1000 + 1))
			noisy := perturbTimes(s.Train, sigma, rng)
			flips, n := 0, 0
			for i, in := range noisy {
				b, _ := in.Best()
				if cleanLabels[i] >= 0 {
					n++
					if b != cleanLabels[i] {
						flips++
					}
				}
			}
			model, _, err := autotuner.Train(noisy, opts.Train)
			if err != nil {
				return nil, fmt.Errorf("%s/sigma=%v: %w", s.Name, sigma, err)
			}
			eval := autotuner.Evaluate(model, s, s.Test)
			row.MeanPerf = append(row.MeanPerf, eval.MeanPerf)
			if n > 0 {
				row.LabelFlips = append(row.LabelFlips, float64(flips)/float64(n))
			} else {
				row.LabelFlips = append(row.LabelFlips, 0)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatNoise renders the robustness table.
func FormatNoise(rows []NoiseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Noise robustness — clean-test performance vs training-time measurement noise\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-10s", "benchmark")
	for _, s := range rows[0].Sigmas {
		fmt.Fprintf(&b, "  sigma=%-5.2f", s)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Benchmark)
		for i := range r.Sigmas {
			fmt.Fprintf(&b, "  %6.2f%%    ", 100*r.MeanPerf[i])
			_ = i
		}
		fmt.Fprintln(&b)
		fmt.Fprintf(&b, "%-10s", "  flips")
		for _, fl := range r.LabelFlips {
			fmt.Fprintf(&b, "  %6.1f%%    ", 100*fl)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
