// Package experiments regenerates every table and figure of the Nitro
// paper's evaluation (Section V) on the synthetic corpora: the Fig. 4 setup
// table, Fig. 5's per-variant performance bars, Fig. 6's Nitro-vs-exhaustive
// comparison (including the solver convergence-selection and BFS-vs-Hybrid
// analyses), Fig. 7's incremental-tuning curves and Fig. 8's
// feature-evaluation overhead study. Results are plain structs plus aligned
// text formatters; cmd/nitro-experiments drives them.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nitro/internal/autotuner"
	"nitro/internal/datasets"
	"nitro/internal/gpusim"
	"nitro/internal/ml"
	"nitro/internal/par"
)

// Options configures an experiment run.
type Options struct {
	// Cfg controls corpus generation (paper sizes at Scale 1).
	Cfg datasets.Config
	// Train configures the classifier; the zero value selects the paper's
	// default (SVM + cross-validated grid search on a coarse grid).
	Train autotuner.TrainOptions
}

// Norm fills the defaults.
func (o Options) Norm() Options {
	o.Cfg = o.Cfg.Norm()
	if o.Train.Classifier == "" {
		o.Train.Classifier = "svm"
		o.Train.GridSearch = true
	}
	if o.Train.GridSearch && len(o.Train.Grid.CValues) == 0 {
		o.Train.Grid = ml.GridConfig{
			CValues:     []float64{0.5, 4, 32, 256},
			GammaValues: []float64{1.0 / 128, 1.0 / 16, 0.5, 4},
			Folds:       4,
			Seed:        o.Cfg.Seed,
		}
	}
	return o
}

// BuildSuites constructs all five benchmark suites once, for reuse across
// figures.
func BuildSuites(opts Options, dev *gpusim.Device) ([]*autotuner.Suite, error) {
	return datasets.All(opts.Norm().Cfg, dev)
}

// SetupRow is one line of the Fig. 4 setup table.
type SetupRow struct {
	Benchmark string
	Variants  []string
	Features  []string
	Train     int
	Test      int
}

// Setup reproduces the Fig. 4 table from the built suites.
func Setup(suites []*autotuner.Suite) []SetupRow {
	out := make([]SetupRow, 0, len(suites))
	for _, s := range suites {
		out = append(out, SetupRow{
			Benchmark: s.Name,
			Variants:  s.VariantNames,
			Features:  s.FeatureNames,
			Train:     len(s.Train),
			Test:      len(s.Test),
		})
	}
	return out
}

// FormatSetup renders the Fig. 4 table.
func FormatSetup(rows []SetupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — benchmark setup (variants, features, corpus sizes)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s train=%-4d test=%-5d\n", r.Benchmark, r.Train, r.Test)
		fmt.Fprintf(&b, "  variants: %s\n", strings.Join(r.Variants, ", "))
		fmt.Fprintf(&b, "  features: %s\n", strings.Join(r.Features, ", "))
	}
	return b.String()
}

// Fig5Row holds one benchmark's per-variant average performance relative to
// the per-input best (=1.0), plus the Nitro-tuned bar.
type Fig5Row struct {
	Benchmark    string
	VariantNames []string
	VariantPerf  []float64
	NitroPerf    float64
}

// Fig5 computes the per-variant bars for every suite. Suites are
// independent, so they train and evaluate in parallel (opts.Train.Parallelism
// workers; rows land in suite order regardless of scheduling).
func Fig5(suites []*autotuner.Suite, opts Options) ([]Fig5Row, error) {
	opts = opts.Norm()
	out := make([]Fig5Row, len(suites))
	err := par.ForErr(len(suites), par.Workers(opts.Train.Parallelism), func(i int) error {
		s := suites[i]
		model, _, err := autotuner.Train(s.Train, opts.Train)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		eval := autotuner.Evaluate(model, s, s.Test)
		out[i] = Fig5Row{
			Benchmark:    s.Name,
			VariantNames: s.VariantNames,
			VariantPerf:  autotuner.VariantPerf(s, s.Test),
			NitroPerf:    eval.MeanPerf,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatFig5 renders the per-variant bars as percentages of best.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — average performance of each variant vs best possible (100%%)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s:\n", r.Benchmark)
		for i, name := range r.VariantNames {
			fmt.Fprintf(&b, "  %-24s %6.2f%%  %s\n", name, 100*r.VariantPerf[i], bar(r.VariantPerf[i]))
		}
		fmt.Fprintf(&b, "  %-24s %6.2f%%  %s\n", "Nitro-tuned", 100*r.NitroPerf, bar(r.NitroPerf))
	}
	return b.String()
}

func bar(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*40 + 0.5)
	return strings.Repeat("#", n)
}

// Fig6Row holds one benchmark's Nitro-vs-exhaustive results, including the
// paper's per-benchmark observations.
type Fig6Row struct {
	Benchmark string
	// MeanPerf is the headline percentage of exhaustive-search performance.
	MeanPerf float64
	// ExactRate is the fraction of test inputs where Nitro picked the
	// oracle variant.
	ExactRate float64
	// Above70/Above90 are the distribution buckets the paper reports for
	// SpMV.
	Above70 float64
	Above90 float64
	// Evaluated / SkippedAllInfeasible / AtRisk / FeasibleChosen mirror the
	// solver analysis (94 evaluable of 100; Nitro picked a converging
	// variant 33 of 35 at-risk times).
	Evaluated            int
	SkippedAllInfeasible int
	AtRisk               int
	FeasibleChosenAtRisk int
	// Hybrid comparison (BFS only): mean Hybrid performance vs best and
	// mean Nitro speedup over Hybrid.
	HybridPerf      float64
	NitroOverHybrid float64
	GridC           float64
	GridGamma       float64
}

// Fig6 trains on each suite's training corpus and evaluates selection
// quality on the held-out test corpus. Suites are independent, so they run
// in parallel (opts.Train.Parallelism workers); rows land in suite order.
func Fig6(suites []*autotuner.Suite, opts Options, dev *gpusim.Device) ([]Fig6Row, error) {
	opts = opts.Norm()
	out := make([]Fig6Row, len(suites))
	err := par.ForErr(len(suites), par.Workers(opts.Train.Parallelism), func(si int) error {
		s := suites[si]
		model, rep, err := autotuner.Train(s.Train, opts.Train)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		eval := autotuner.Evaluate(model, s, s.Test)
		row := Fig6Row{
			Benchmark:            s.Name,
			MeanPerf:             eval.MeanPerf,
			Above70:              eval.FractionAbove(0.70),
			Above90:              eval.FractionAbove(0.90),
			Evaluated:            eval.Evaluated,
			SkippedAllInfeasible: eval.SkippedAllInfeasible,
			AtRisk:               eval.AtRiskInstances,
			GridC:                rep.Grid.C,
			GridGamma:            rep.Grid.Gamma,
		}
		if eval.Evaluated > 0 {
			row.ExactRate = float64(eval.ExactMatches) / float64(eval.Evaluated)
		}
		// "Picked a converging variant" restricted to at-risk instances.
		atRiskOK := 0
		idx := 0
		for _, in := range s.Test {
			best, _ := in.Best()
			if best < 0 {
				idx++
				continue
			}
			risky := false
			for _, t := range in.Times {
				if math.IsInf(t, 1) {
					risky = true
					break
				}
			}
			if risky && eval.Chosen[idx] >= 0 && !math.IsInf(in.Times[eval.Chosen[idx]], 1) {
				atRiskOK++
			}
			idx++
		}
		row.FeasibleChosenAtRisk = atRiskOK

		if s.Name == "BFS" {
			hybrid, err := datasets.BFSHybridTimes(opts.Cfg, dev)
			if err != nil {
				return err
			}
			var hPerf, speedup float64
			n := 0
			idx = 0
			for i, in := range s.Test {
				best, bestT := in.Best()
				if best < 0 {
					idx++
					continue
				}
				chosen := eval.Chosen[idx]
				idx++
				if chosen < 0 || math.IsInf(in.Times[chosen], 1) || hybrid[i] <= 0 {
					continue
				}
				hPerf += bestT / hybrid[i]
				speedup += hybrid[i] / in.Times[chosen]
				n++
			}
			if n > 0 {
				row.HybridPerf = hPerf / float64(n)
				row.NitroOverHybrid = speedup / float64(n)
			}
		}
		out[si] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatFig6 renders the per-benchmark results with the paper's reference
// numbers alongside.
func FormatFig6(rows []Fig6Row) string {
	paper := map[string]float64{
		"SpMV": 93.74, "Solvers": 93.23, "BFS": 97.92, "Histogram": 94.16, "Sort": 99.25,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — Nitro-tuned performance vs exhaustive search (test corpora)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %8s %8s %8s\n", "benchmark", "nitro", "paper", "exact", ">=70%", ">=90%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9.2f%% %9.2f%% %7.1f%% %7.1f%% %7.1f%%\n",
			r.Benchmark, 100*r.MeanPerf, paper[r.Benchmark], 100*r.ExactRate, 100*r.Above70, 100*r.Above90)
	}
	for _, r := range rows {
		if r.Benchmark == "Solvers" {
			fmt.Fprintf(&b, "Solvers: %d of %d evaluable (no variant solved %d); converging variant chosen on %d of %d at-risk systems\n",
				r.Evaluated, r.Evaluated+r.SkippedAllInfeasible, r.SkippedAllInfeasible, r.FeasibleChosenAtRisk, r.AtRisk)
		}
		if r.Benchmark == "BFS" && r.HybridPerf > 0 {
			fmt.Fprintf(&b, "BFS: Hybrid baseline at %.2f%% of best (paper: 88.14%%); Nitro %.2fx over Hybrid (paper: 1.11x)\n",
				100*r.HybridPerf, r.NitroOverHybrid)
		}
	}
	return b.String()
}

// HeadlineResult aggregates the paper's abstract-level claim.
type HeadlineResult struct {
	Rows    []Fig6Row
	MinPerf float64
	AvgPerf float64
}

// Headline computes the ">93% of exhaustive search" aggregate.
func Headline(suites []*autotuner.Suite, opts Options, dev *gpusim.Device) (HeadlineResult, error) {
	rows, err := Fig6(suites, opts, dev)
	if err != nil {
		return HeadlineResult{}, err
	}
	res := HeadlineResult{Rows: rows, MinPerf: math.Inf(1)}
	for _, r := range rows {
		res.AvgPerf += r.MeanPerf
		if r.MeanPerf < res.MinPerf {
			res.MinPerf = r.MeanPerf
		}
	}
	res.AvgPerf /= float64(len(rows))
	return res, nil
}

// FormatHeadline renders the aggregate claim.
func FormatHeadline(h HeadlineResult) string {
	var b strings.Builder
	b.WriteString(FormatFig6(h.Rows))
	fmt.Fprintf(&b, "Headline: Nitro achieves %.2f%% of exhaustive search on average (min %.2f%%); paper claims >93%%\n",
		100*h.AvgPerf, 100*h.MinPerf)
	return b.String()
}

// featureOrderByCost returns feature indices sorted by mean evaluation cost
// (ascending), the order Fig. 8 adds features in.
func featureOrderByCost(instances []autotuner.Instance, nFeat int) []int {
	sums := make([]float64, nFeat)
	for _, in := range instances {
		for j, c := range in.FeatureCosts {
			if j < nFeat {
				sums[j] += c
			}
		}
	}
	order := make([]int, nFeat)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sums[order[a]] < sums[order[b]] })
	return order
}

// projectInstances keeps only the feature columns in keep (order preserved).
func projectInstances(instances []autotuner.Instance, keep []int) []autotuner.Instance {
	out := make([]autotuner.Instance, len(instances))
	for i, in := range instances {
		f := make([]float64, len(keep))
		for k, j := range keep {
			f[k] = in.Features[j]
		}
		out[i] = autotuner.Instance{ID: in.ID, Features: f, Times: in.Times}
	}
	return out
}
