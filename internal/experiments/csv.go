package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV exporters: one per figure, so the regenerated data can be re-plotted
// against the paper's charts with any plotting tool.

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteFig5CSV emits benchmark,variant,perf_vs_best rows (Nitro included as
// the pseudo-variant "Nitro").
func WriteFig5CSV(w io.Writer, rows []Fig5Row) error {
	out := [][]string{{"benchmark", "variant", "perf_vs_best"}}
	for _, r := range rows {
		for i, name := range r.VariantNames {
			out = append(out, []string{r.Benchmark, name, f(r.VariantPerf[i])})
		}
		out = append(out, []string{r.Benchmark, "Nitro", f(r.NitroPerf)})
	}
	return writeAll(w, out)
}

// WriteFig6CSV emits the per-benchmark selection-quality summary.
func WriteFig6CSV(w io.Writer, rows []Fig6Row) error {
	out := [][]string{{
		"benchmark", "mean_perf", "exact_rate", "above70", "above90",
		"evaluated", "skipped_all_infeasible", "at_risk", "feasible_chosen_at_risk",
		"hybrid_perf", "nitro_over_hybrid",
	}}
	for _, r := range rows {
		out = append(out, []string{
			r.Benchmark, f(r.MeanPerf), f(r.ExactRate), f(r.Above70), f(r.Above90),
			strconv.Itoa(r.Evaluated), strconv.Itoa(r.SkippedAllInfeasible),
			strconv.Itoa(r.AtRisk), strconv.Itoa(r.FeasibleChosenAtRisk),
			f(r.HybridPerf), f(r.NitroOverHybrid),
		})
	}
	return writeAll(w, out)
}

// WriteFig7CSV emits benchmark,iteration,perf,random_perf,full_perf series.
func WriteFig7CSV(w io.Writer, curves []Fig7Curve) error {
	out := [][]string{{"benchmark", "iteration", "perf", "random_perf", "full_perf"}}
	for _, c := range curves {
		for k, p := range c.Curve {
			rnd := ""
			if k < len(c.RandomCurve) {
				rnd = f(c.RandomCurve[k])
			}
			out = append(out, []string{c.Benchmark, strconv.Itoa(k), f(p), rnd, f(c.FullPerf)})
		}
	}
	return writeAll(w, out)
}

// WriteFig8CSV emits benchmark,k,feature,prefix_perf,cum_cost_frac rows.
func WriteFig8CSV(w io.Writer, rows []Fig8Row) error {
	out := [][]string{{"benchmark", "k", "feature", "prefix_perf", "cum_cost_frac"}}
	for _, r := range rows {
		for k := range r.PrefixPerf {
			out = append(out, []string{
				r.Benchmark, strconv.Itoa(k + 1), r.FeatureOrder[k],
				f(r.PrefixPerf[k]), f(r.PrefixCostFrac[k]),
			})
		}
	}
	return writeAll(w, out)
}

// WriteSetupCSV emits the Fig. 4 table.
func WriteSetupCSV(w io.Writer, rows []SetupRow) error {
	out := [][]string{{"benchmark", "num_variants", "num_features", "train", "test"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Benchmark, strconv.Itoa(len(r.Variants)), strconv.Itoa(len(r.Features)),
			strconv.Itoa(r.Train), strconv.Itoa(r.Test),
		})
	}
	return writeAll(w, out)
}

// CSVName maps a figure id to its default file name.
func CSVName(fig string) string { return fmt.Sprintf("nitro_%s.csv", fig) }
