package experiments

// Observability-overhead study: the cost of the fleet tracing plane on the
// serving hot path. The same per-route latency harness as the serving study
// runs twice — once against a daemon with observability at its defaults
// (flight ring only, no slog stream, no inbound trace ids) and once with
// the full plane on (debug-level structured logging, client-injected
// X-Nitro-Trace-Id on every request) — and reduces each pair to a
// p50-based overhead percentage. The acceptance bar is <2% on the artifact
// pull path: tracing that taxes every cache revalidation is tracing fleets
// turn off. The JSON form (WriteObsJSON) is the machine-readable
// BENCH_obs.json artifact `make bench-obs` emits.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"nitro/internal/obs/trace"
	"nitro/internal/online"
	"nitro/internal/server"
	"nitro/internal/server/client"
)

// ObsTargetPct is the acceptance ceiling for pull-path tracing overhead.
const ObsTargetPct = 2.0

// ObsRoute is one route measured with the plane off and on.
type ObsRoute struct {
	Route       string  `json:"route"`
	Calls       int     `json:"calls"`
	OffP50Us    float64 `json:"off_p50_us"`
	OnP50Us     float64 `json:"on_p50_us"`
	OffMeanUs   float64 `json:"off_mean_us"`
	OnMeanUs    float64 `json:"on_mean_us"`
	OverheadPct float64 `json:"overhead_pct"` // p50-based: (on-off)/off * 100
}

// ObsReport is the on-disk shape of BENCH_obs.json.
type ObsReport struct {
	Study     string     `json:"study"`
	TargetPct float64    `json:"target_pct"`
	Routes    []ObsRoute `json:"routes"`
	// PullOverheadPct is the headline number: p50 overhead on the
	// cache-revalidating pull path, the route fleets hit hardest.
	PullOverheadPct float64 `json:"pull_overhead_pct"`
	WithinTarget    bool    `json:"within_target"`
}

// obsPhase measures the standard route set against one daemon config and
// returns route name -> measurement.
func obsPhase(calls int, traced bool) (map[string]ServingRoute, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cfg := server.Config{
		Addr: "127.0.0.1:0",
		Registry: server.RegistryConfig{
			Tenants: []server.TenantConfig{{Name: "bench", Token: "bench-token"}},
			Workers: 1,
		},
	}
	if traced {
		// The full plane: debug-level slog on every control-plane and HTTP
		// event, written to io.Discard so the study measures the plane's
		// cost, not the disk's.
		cfg.Obs = server.ObsConfig{LogWriter: io.Discard, Debug: true}
	}
	d, err := server.NewDaemon(cfg)
	if err != nil {
		return nil, err
	}
	if err := d.Start(cfg); err != nil {
		return nil, err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		d.Shutdown(sctx)
	}()

	c, err := client.New(client.Config{BaseURL: "http://" + d.Addr(), Token: "bench-token"})
	if err != nil {
		return nil, err
	}
	if traced {
		// Every request carries an inbound trace id, exercising the
		// sanitize/echo/propagate path instead of the cheaper mint path.
		ctx = trace.With(ctx, "t-bench-obs")
	}
	if err := c.RegisterFunction(ctx, servingSpec); err != nil {
		return nil, err
	}
	art, err := servingArtifact()
	if err != nil {
		return nil, err
	}
	if _, err := c.PushModel(ctx, servingSpec.Name, art, ""); err != nil {
		return nil, err
	}
	pull, err := c.PullModel(ctx, servingSpec.Name, 0, "")
	if err != nil {
		return nil, err
	}
	samples := make([]online.RemoteSample, 16)
	for i := range samples {
		samples[i] = online.RemoteSample{Features: []float64{float64(i % 10)}, Times: []float64{1, 2}, Predicted: -1}
	}

	out := make(map[string]ServingRoute)
	routes := []struct {
		name string
		fn   func() error
	}{
		{"pull_model_304", func() error { _, err := c.PullModel(ctx, servingSpec.Name, 0, pull.ETag); return err }},
		{"pull_model", func() error { _, err := c.PullModel(ctx, servingSpec.Name, 0, ""); return err }},
		{"push_observations_16", func() error { _, err := c.PushObservations(ctx, servingSpec.Name, samples); return err }},
		{"get_deployment", func() error { _, err := c.Deployment(ctx, servingSpec.Name); return err }},
	}
	for _, r := range routes {
		row, err := measure(r.name, calls, r.fn)
		if err != nil {
			return nil, err
		}
		out[r.name] = row
	}
	return out, nil
}

// ObsStudy measures the observability plane's overhead route by route.
// calls is the per-route sample count (minimum 50 for stable p50s).
func ObsStudy(calls int) (ObsReport, error) {
	if calls < 50 {
		calls = 50
	}
	// Interleave off/on/off/on and keep the best (lowest-p50) run of each
	// arm per route: both arms then reflect the machine's quiet floor
	// rather than whichever phase a scheduling hiccup landed on.
	const rounds = 2
	best := map[bool]map[string]ServingRoute{false: {}, true: {}}
	for i := 0; i < rounds; i++ {
		for _, traced := range []bool{false, true} {
			rows, err := obsPhase(calls, traced)
			if err != nil {
				return ObsReport{}, err
			}
			for name, row := range rows {
				if prev, ok := best[traced][name]; !ok || row.P50Us < prev.P50Us {
					best[traced][name] = row
				}
			}
		}
	}

	rep := ObsReport{Study: "obs", TargetPct: ObsTargetPct}
	for _, name := range []string{"pull_model_304", "pull_model", "push_observations_16", "get_deployment"} {
		off, on := best[false][name], best[true][name]
		overhead := 0.0
		if off.P50Us > 0 {
			overhead = (on.P50Us - off.P50Us) / off.P50Us * 100
		}
		rep.Routes = append(rep.Routes, ObsRoute{
			Route: name, Calls: calls,
			OffP50Us: off.P50Us, OnP50Us: on.P50Us,
			OffMeanUs: off.MeanUs, OnMeanUs: on.MeanUs,
			OverheadPct: overhead,
		})
		if name == "pull_model_304" {
			rep.PullOverheadPct = overhead
		}
	}
	rep.WithinTarget = rep.PullOverheadPct < ObsTargetPct
	return rep, nil
}

// FormatObs renders the study as an aligned table.
func FormatObs(r ObsReport) string {
	out := "Observability-overhead study (tracing off vs on, live daemon over HTTP)\n"
	out += fmt.Sprintf("%-24s %8s %12s %12s %10s\n", "route", "calls", "off p50(us)", "on p50(us)", "overhead")
	for _, row := range r.Routes {
		out += fmt.Sprintf("%-24s %8d %12.0f %12.0f %+9.1f%%\n",
			row.Route, row.Calls, row.OffP50Us, row.OnP50Us, row.OverheadPct)
	}
	verdict := "WITHIN"
	if !r.WithinTarget {
		verdict = "OVER"
	}
	out += fmt.Sprintf("pull-path overhead %+.1f%% vs %.0f%% target: %s\n", r.PullOverheadPct, r.TargetPct, verdict)
	return out
}

// WriteObsJSON writes the machine-readable BENCH_obs.json artifact.
func WriteObsJSON(w io.Writer, r ObsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
