package experiments

// Ensemble study: quantify what the agreement-weighted committee buys (and
// costs) over the single tuned SVM, and what LinUCB bandit-directed
// exploration buys over uniform epsilon-greedy re-timing after a concept
// drift. The JSON form (WriteEnsembleJSON) is the machine-readable
// BENCH_ensemble.json artifact `make bench-ensemble` emits; EXPERIMENTS.md
// records a reference run.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/core"
	"nitro/internal/ml"
	"nitro/internal/online"
)

// EnsembleRow compares the single-SVM and four-member-ensemble selectors on
// one benchmark: selection quality, training cost and per-prediction
// overhead (the price of polling four models instead of one).
type EnsembleRow struct {
	Benchmark string `json:"benchmark"`
	// Selection quality: fraction of exhaustive-search performance and
	// exact-pick rate on the held-out test corpus.
	SVMPerf       float64 `json:"svm_mean_perf"`
	SVMExact      float64 `json:"svm_exact_rate"`
	EnsemblePerf  float64 `json:"ensemble_mean_perf"`
	EnsembleExact float64 `json:"ensemble_exact_rate"`
	// Training wall time in milliseconds (the ensemble pays a k-fold
	// out-of-fold pass on top of fitting four members).
	SVMTrainMs      float64 `json:"svm_train_ms"`
	EnsembleTrainMs float64 `json:"ensemble_train_ms"`
	// Per-prediction cost in ns/op over the test corpus (0 when timing was
	// skipped).
	SVMPredictNs      float64 `json:"svm_predict_ns_op"`
	EnsemblePredictNs float64 `json:"ensemble_predict_ns_op"`
	// MeanConfidence is the ensemble's mean calibrated confidence over the
	// test corpus — the signal the bandit router thresholds on.
	MeanConfidence float64 `json:"ensemble_mean_confidence"`
}

// ExplorationRow is one exploration strategy's drift response on a replayed
// call stream: how many calls it took from the injected drift to the
// recovering hot-swap, and what the exploration budget cost along the way.
type ExplorationRow struct {
	Strategy string `json:"strategy"`
	// DriftToSwapCalls counts calls from the drift injection point to the
	// hot-swap that recovered from it (-1 when no swap happened).
	DriftToSwapCalls int64 `json:"drift_to_swap_calls"`
	// Explored counts full re-timings spent; ExploreSeconds is their summed
	// simulated cost — the regret paid to relearn the mapping.
	Explored       int64   `json:"explored"`
	ExploreSeconds float64 `json:"explore_seconds"`
	Swaps          int64   `json:"swaps"`
	BanditPulls    int64   `json:"bandit_pulls,omitempty"`
}

// EnsembleReport is the on-disk shape of BENCH_ensemble.json.
type EnsembleReport struct {
	// PredictCalls is the per-model prediction-timing iteration count (0 =
	// timing skipped).
	PredictCalls int              `json:"predict_calls"`
	Rows         []EnsembleRow    `json:"rows"`
	Exploration  []ExplorationRow `json:"exploration"`
}

// EnsembleStudy runs the comparison over every suite. predictCalls is the
// prediction-timing iteration count; 0 skips the wall-clock timings (the
// fast mode tests use) while still reporting quality and confidence.
func EnsembleStudy(suites []*autotuner.Suite, opts Options, predictCalls int) (EnsembleReport, error) {
	opts = opts.Norm()
	rep := EnsembleReport{PredictCalls: predictCalls}
	for _, s := range suites {
		row := EnsembleRow{Benchmark: s.Name}
		for _, kind := range []string{"svm", "ensemble"} {
			tr := opts.Train
			tr.Classifier = kind
			tr.GridSearch = kind == "svm" && opts.Train.GridSearch
			start := time.Now()
			model, _, err := autotuner.Train(s.Train, tr)
			if err != nil {
				return rep, fmt.Errorf("%s/%s: %w", s.Name, kind, err)
			}
			trainMs := float64(time.Since(start).Microseconds()) / 1000
			eval := autotuner.Evaluate(model, s, s.Test)
			exact := 0.0
			if eval.Evaluated > 0 {
				exact = float64(eval.ExactMatches) / float64(eval.Evaluated)
			}
			predictNs := 0.0
			if predictCalls > 0 {
				predictNs = timePredict(model, s, predictCalls)
			}
			if kind == "svm" {
				row.SVMPerf, row.SVMExact = eval.MeanPerf, exact
				row.SVMTrainMs, row.SVMPredictNs = trainMs, predictNs
			} else {
				row.EnsemblePerf, row.EnsembleExact = eval.MeanPerf, exact
				row.EnsembleTrainMs, row.EnsemblePredictNs = trainMs, predictNs
				row.MeanConfidence = meanConfidence(model, s)
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	// The exploration comparison replays one drifting call stream per
	// strategy over the first suite — both runs are seeded and synchronous,
	// so the comparison is deterministic.
	if len(suites) > 0 {
		for _, strategy := range []string{"epsilon-greedy", "linucb"} {
			row, err := runExploration(suites[0], opts, strategy)
			if err != nil {
				return rep, fmt.Errorf("exploration/%s: %w", strategy, err)
			}
			rep.Exploration = append(rep.Exploration, row)
		}
	}
	return rep, nil
}

// timePredict measures the steady-state Model.Predict cost over the suite's
// test features.
func timePredict(model *ml.Model, s *autotuner.Suite, calls int) float64 {
	feats := make([][]float64, 0, len(s.Test))
	for _, in := range s.Test {
		feats = append(feats, in.Features)
	}
	if len(feats) == 0 {
		return 0
	}
	for i := 0; i < len(feats); i++ { // warm
		model.Predict(feats[i])
	}
	start := time.Now()
	for i := 0; i < calls; i++ {
		model.Predict(feats[i%len(feats)])
	}
	return float64(time.Since(start).Nanoseconds()) / float64(calls)
}

// meanConfidence averages the model's calibrated confidence over the test
// corpus.
func meanConfidence(model *ml.Model, s *autotuner.Suite) float64 {
	if len(s.Test) == 0 {
		return 0
	}
	sum := 0.0
	for _, in := range s.Test {
		sum += model.Confidence(in.Features)
	}
	return sum / float64(len(s.Test))
}

// explorationPolicy is the fixed adaptation configuration both strategies
// replay under; only the bandit router differs.
func explorationPolicy(opts Options, strategy string) online.Policy {
	pol := online.Policy{
		SamplePeriod:      2,
		ExploreRate:       0.5,
		ReservoirSize:     256,
		Window:            20,
		MismatchThreshold: 0.4,
		RegretThreshold:   0.5,
		DriftWindows:      2,
		RecoveryWindows:   2,
		CooldownWindows:   2,
		MinRetrainSamples: 24,
		Retrain: autotuner.RetrainOptions{
			TrainOptions: autotuner.TrainOptions{
				Classifier:  opts.Train.Classifier,
				Seed:        opts.Train.Seed,
				Parallelism: opts.Train.Parallelism,
			},
		},
		Seed:        opts.Train.Seed,
		Synchronous: true,
	}
	if strategy == "linucb" {
		// MinConfidence above 1 hands every sampled call to the bandit, so
		// the comparison isolates the exploration economics: epsilon-greedy
		// re-times every alternative variant on half the samples, LinUCB
		// re-times the one arm it believes in on each of them.
		pol.Bandit = &online.BanditPolicy{MinConfidence: 1.1}
	}
	return pol
}

// runExploration replays one drifting call stream (30% healthy, then every
// instance's per-variant costs rotated by one slot) through a live
// CodeVariant under the given exploration strategy and reports the drift
// response.
func runExploration(s *autotuner.Suite, opts Options, strategy string) (ExplorationRow, error) {
	row := ExplorationRow{Strategy: strategy, DriftToSwapCalls: -1}
	feasible := autotuner.FeasibleTest(s)
	if len(feasible) == 0 {
		return row, fmt.Errorf("no feasible test instances")
	}
	model, _, err := autotuner.Train(s.Train, opts.Train)
	if err != nil {
		return row, err
	}
	cx := core.NewContext()
	cv, err := autotuner.ReplayVariant(cx, s, core.DefaultPolicy(s.Name))
	if err != nil {
		return row, err
	}
	if err := cx.SetModel(s.Name, model); err != nil {
		return row, err
	}
	eng, err := online.Attach(cv, explorationPolicy(opts, strategy))
	if err != nil {
		return row, err
	}
	defer eng.Close()

	const streamLen = 600
	driftCall := streamLen * 3 / 10
	for i := 0; i < streamLen; i++ {
		in := feasible[i%len(feasible)]
		if i >= driftCall {
			rot := make([]float64, len(in.Times))
			for j := range in.Times {
				rot[j] = in.Times[(j+1)%len(in.Times)]
			}
			in.Times = rot
		}
		if _, _, err := cv.Call(in); err != nil {
			continue // rotated instance lost all feasible variants
		}
	}
	st := eng.Stats()
	row.Explored = st.Explored
	row.ExploreSeconds = st.ExploreSeconds
	row.Swaps = st.Swaps
	row.BanditPulls = st.BanditPulls
	for _, ev := range eng.Events() {
		if ev.Kind == online.EventSwap || ev.Kind == online.EventBakeoffPromote {
			row.DriftToSwapCalls = ev.Call - int64(driftCall)
			break
		}
	}
	return row, nil
}

// FormatEnsemble renders the study as aligned text tables.
func FormatEnsemble(rep EnsembleReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ensemble committee vs single SVM — selection quality and overhead\n")
	fmt.Fprintf(&b, "%-10s %9s %9s %10s %10s %10s %10s %11s\n",
		"benchmark", "svm perf", "ens perf", "svm exact", "ens exact", "svm ns", "ens ns", "ens conf")
	ns := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f ns", v)
	}
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-10s %8.2f%% %8.2f%% %9.1f%% %9.1f%% %10s %10s %10.3f\n",
			r.Benchmark, 100*r.SVMPerf, 100*r.EnsemblePerf, 100*r.SVMExact, 100*r.EnsembleExact,
			ns(r.SVMPredictNs), ns(r.EnsemblePredictNs), r.MeanConfidence)
	}
	if len(rep.Exploration) > 0 {
		fmt.Fprintf(&b, "\nExploration after drift — epsilon-greedy vs LinUCB bandit\n")
		fmt.Fprintf(&b, "%-15s %15s %10s %14s %6s\n",
			"strategy", "drift->swap", "explored", "explore cost", "swaps")
		for _, e := range rep.Exploration {
			swap := "-"
			if e.DriftToSwapCalls >= 0 {
				swap = fmt.Sprintf("%d calls", e.DriftToSwapCalls)
			}
			fmt.Fprintf(&b, "%-15s %15s %10d %13.3fs %6d\n",
				e.Strategy, swap, e.Explored, e.ExploreSeconds, e.Swaps)
		}
	}
	return b.String()
}

// WriteEnsembleJSON emits the machine-readable benchmark artifact.
func WriteEnsembleJSON(w io.Writer, rep EnsembleReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
