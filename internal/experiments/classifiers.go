package experiments

import (
	"fmt"
	"io"
	"strings"

	"nitro/internal/autotuner"
)

// ClassifierRow holds one benchmark's selection quality under each pluggable
// classifier — the comparison the paper's related-work section points at
// (Luo et al. compare classifier choices; Nitro makes the classifier a
// tuning-script option).
type ClassifierRow struct {
	Benchmark   string
	Classifiers []string
	MeanPerf    []float64
	ExactRate   []float64
}

// ClassifierComparison trains each available classifier on every suite.
func ClassifierComparison(suites []*autotuner.Suite, opts Options) ([]ClassifierRow, error) {
	opts = opts.Norm()
	kinds := []string{"svm", "knn", "tree", "logistic"}
	out := make([]ClassifierRow, 0, len(suites))
	for _, s := range suites {
		row := ClassifierRow{Benchmark: s.Name, Classifiers: kinds}
		for _, kind := range kinds {
			tr := opts.Train
			tr.Classifier = kind
			tr.GridSearch = kind == "svm" && opts.Train.GridSearch
			model, _, err := autotuner.Train(s.Train, tr)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", s.Name, kind, err)
			}
			eval := autotuner.Evaluate(model, s, s.Test)
			row.MeanPerf = append(row.MeanPerf, eval.MeanPerf)
			exact := 0.0
			if eval.Evaluated > 0 {
				exact = float64(eval.ExactMatches) / float64(eval.Evaluated)
			}
			row.ExactRate = append(row.ExactRate, exact)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatClassifierComparison renders the comparison table.
func FormatClassifierComparison(rows []ClassifierRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Classifier comparison — %% of exhaustive-search performance per classifier\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-10s", "benchmark")
	for _, c := range rows[0].Classifiers {
		fmt.Fprintf(&b, " %9s", c)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Benchmark)
		for _, p := range r.MeanPerf {
			fmt.Fprintf(&b, " %8.2f%%", 100*p)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// WriteClassifierCSV emits benchmark,classifier,mean_perf,exact_rate rows.
func WriteClassifierCSV(w io.Writer, rows []ClassifierRow) error {
	out := [][]string{{"benchmark", "classifier", "mean_perf", "exact_rate"}}
	for _, r := range rows {
		for i, c := range r.Classifiers {
			out = append(out, []string{r.Benchmark, c, f(r.MeanPerf[i]), f(r.ExactRate[i])})
		}
	}
	return writeAll(w, out)
}
