package experiments

// Dispatch-overhead study for the compiled-dispatch subsystem: distill every
// benchmark's tuned model into a compiled artifact, record how faithfully it
// reproduces the exact classifier (the ≥99% agreement gate CI enforces), and
// time the three rungs of the dispatch ladder — memoized, compiled, exact —
// through a live core.CodeVariant replay. The JSON form (WriteDispatchJSON)
// is the machine-readable BENCH_dispatch.json artifact `make bench-dispatch`
// emits.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/core"
	"nitro/internal/ml"
)

// DispatchRow is one benchmark's distillation quality and per-tier call cost.
type DispatchRow struct {
	Benchmark string `json:"benchmark"`
	// Agreement is the fraction of training-corpus inputs on which the
	// served choice (compiled walk + margin fallback) matches the exact
	// classifier; the distiller's install gate requires >= 0.99.
	Agreement float64 `json:"agreement"`
	// FallbackRate is the calibrated fraction of corpus inputs the compiled
	// walk routes to the exact model (within-margin of a boundary).
	FallbackRate float64 `json:"fallback_rate"`
	Nodes        int     `json:"nodes"`
	Depth        int     `json:"depth"`
	// Per-tier steady-state Call cost in ns/op (0 when timing was skipped).
	MemoNs     float64 `json:"memo_ns_op"`
	CompiledNs float64 `json:"compiled_ns_op"`
	ExactNs    float64 `json:"exact_ns_op"`
}

// DistillSuite trains a suite's model and distills it into a compiled
// artifact, installing it on the returned model. A distiller rejection (gate
// failure) is returned as an error — the study's whole point is that every
// benchmark passes the agreement gate.
func DistillSuite(s *autotuner.Suite, opts Options) (*ml.Model, error) {
	model, _, err := autotuner.Train(s.Train, opts.Train)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	corpus := make([][]float64, 0, len(s.Train))
	for _, in := range s.Train {
		corpus = append(corpus, in.Features)
	}
	c, err := ml.Distill(model, corpus, ml.DistillOptions{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	model.Compiled = c
	return model, nil
}

// Dispatch runs the study over every suite. calls is the per-tier timing
// iteration count; 0 skips timing and reports distillation quality only
// (the fast mode tests use).
func Dispatch(suites []*autotuner.Suite, opts Options, calls int) ([]DispatchRow, error) {
	opts = opts.Norm()
	out := make([]DispatchRow, 0, len(suites))
	for _, s := range suites {
		model, err := DistillSuite(s, opts)
		if err != nil {
			return nil, err
		}
		c := model.Compiled
		row := DispatchRow{
			Benchmark:    s.Name,
			Agreement:    c.Agreement,
			FallbackRate: c.FallbackRate,
			Nodes:        len(c.Nodes),
			Depth:        c.Depth(),
		}
		if calls > 0 {
			if row.MemoNs, err = timeTier(s, model, calls, tierMemo); err != nil {
				return nil, fmt.Errorf("%s: %w", s.Name, err)
			}
			if row.CompiledNs, err = timeTier(s, model, calls, tierCompiled); err != nil {
				return nil, fmt.Errorf("%s: %w", s.Name, err)
			}
			if row.ExactNs, err = timeTier(s, model, calls, tierExact); err != nil {
				return nil, fmt.Errorf("%s: %w", s.Name, err)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

const (
	tierMemo = iota
	tierCompiled
	tierExact
)

// timeTier measures the steady-state serial Call cost of one dispatch tier
// through a replay CodeVariant: tierMemo hammers one hot input so the memo
// cache serves every call after the first; tierCompiled disables the memo and
// cycles distinct inputs through the compiled walk; tierExact disables both
// fast tiers — the full scaler + classifier pass every call paid before this
// subsystem existed.
func timeTier(s *autotuner.Suite, model *ml.Model, calls, tier int) (float64, error) {
	feasible := autotuner.FeasibleTest(s)
	if len(feasible) == 0 {
		return 0, fmt.Errorf("dispatch timing: no feasible test instances")
	}
	policy := core.DefaultPolicy(s.Name)
	switch tier {
	case tierMemo:
		feasible = feasible[:1]
	case tierCompiled:
		policy.Dispatch.DisableMemo = true
	case tierExact:
		policy.Dispatch.DisableMemo = true
		policy.Dispatch.DisableCompiled = true
	}
	cx := core.NewContext()
	cv, err := autotuner.ReplayVariant(cx, s, policy)
	if err != nil {
		return 0, err
	}
	if err := cx.SetModel(s.Name, model); err != nil {
		return 0, err
	}
	// Warm the pools, the memo slot and the branch predictors before timing.
	warm := calls / 10
	if warm < len(feasible) {
		warm = len(feasible)
	}
	for i := 0; i < warm; i++ {
		if _, _, err := cv.Call(feasible[i%len(feasible)]); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < calls; i++ {
		if _, _, err := cv.Call(feasible[i%len(feasible)]); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(calls), nil
}

// FormatDispatch renders the study as an aligned text table.
func FormatDispatch(rows []DispatchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dispatch overhead — compiled artifact quality and per-tier Call cost\n")
	fmt.Fprintf(&b, "%-10s %10s %9s %6s %6s %10s %12s %10s\n",
		"benchmark", "agreement", "fallback", "nodes", "depth", "memo", "compiled", "exact")
	for _, r := range rows {
		ns := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f ns", v)
		}
		fmt.Fprintf(&b, "%-10s %9.2f%% %8.1f%% %6d %6d %10s %12s %10s\n",
			r.Benchmark, 100*r.Agreement, 100*r.FallbackRate, r.Nodes, r.Depth,
			ns(r.MemoNs), ns(r.CompiledNs), ns(r.ExactNs))
	}
	return b.String()
}

// dispatchReport is the on-disk shape of BENCH_dispatch.json.
type dispatchReport struct {
	// MinAgreement echoes the distiller's install gate so the consumer can
	// re-check rows against the threshold they were gated on.
	MinAgreement float64       `json:"min_agreement"`
	Calls        int           `json:"calls_per_tier"`
	Rows         []DispatchRow `json:"rows"`
}

// WriteDispatchJSON emits the machine-readable benchmark artifact.
func WriteDispatchJSON(w io.Writer, rows []DispatchRow, calls int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dispatchReport{
		MinAgreement: ml.DefaultDistillOptions().MinAgreement,
		Calls:        calls,
		Rows:         rows,
	})
}
