package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEnsembleStudy(t *testing.T) {
	suites, opts, _ := buildSmall(t)
	rep, err := EnsembleStudy(suites[:2], opts, 0) // two suites, no timing: fast
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.SVMPerf <= 0 || r.EnsemblePerf <= 0 {
			t.Errorf("%s: non-positive mean perf (svm %v, ensemble %v)", r.Benchmark, r.SVMPerf, r.EnsemblePerf)
		}
		if r.MeanConfidence <= 0 || r.MeanConfidence > 1 {
			t.Errorf("%s: ensemble mean confidence %v out of (0, 1]", r.Benchmark, r.MeanConfidence)
		}
		if r.SVMPredictNs != 0 || r.EnsemblePredictNs != 0 {
			t.Errorf("%s: timing reported with predictCalls=0", r.Benchmark)
		}
	}
	if len(rep.Exploration) != 2 {
		t.Fatalf("want 2 exploration rows, got %d", len(rep.Exploration))
	}
	for _, e := range rep.Exploration {
		if e.Explored <= 0 {
			t.Errorf("%s: no exploration happened", e.Strategy)
		}
	}
	if rep.Exploration[0].Strategy != "epsilon-greedy" || rep.Exploration[1].Strategy != "linucb" {
		t.Fatalf("exploration strategies = %v, %v", rep.Exploration[0].Strategy, rep.Exploration[1].Strategy)
	}
	if rep.Exploration[1].BanditPulls <= 0 {
		t.Error("linucb run recorded no bandit pulls")
	}

	text := FormatEnsemble(rep)
	for _, want := range []string{"Ensemble committee", "epsilon-greedy", "linucb"} {
		if !strings.Contains(text, want) {
			t.Errorf("format missing %q:\n%s", want, text)
		}
	}
	var buf bytes.Buffer
	if err := WriteEnsembleJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var round EnsembleReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("BENCH_ensemble.json does not round-trip: %v", err)
	}
	if len(round.Rows) != len(rep.Rows) || len(round.Exploration) != len(rep.Exploration) {
		t.Error("JSON round-trip lost rows")
	}
}
