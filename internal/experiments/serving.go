package experiments

// Serving-latency study: drives a live registry daemon over real HTTP and
// records per-route latency percentiles (artifact pulls, cached 304
// revalidations, observation pushes, deployment reads), then deliberately
// overloads a second daemon with a tiny in-flight cap to measure the
// prioritized load-shedding path. The JSON form (WriteServingJSON) is the
// machine-readable BENCH_serving.json artifact `make bench-serving` emits —
// the starting point of the serving-performance trajectory, the serving
// counterpart of BENCH_dispatch.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"nitro/internal/ml"
	"nitro/internal/online"
	"nitro/internal/server"
	"nitro/internal/server/client"
)

// ServingRoute is one measured API route.
type ServingRoute struct {
	Route  string  `json:"route"`
	Calls  int     `json:"calls"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MeanUs float64 `json:"mean_us"`
}

// ServingOverload summarizes the forced-overload phase.
type ServingOverload struct {
	MaxInflight int   `json:"max_inflight"`
	Requests    int   `json:"requests"`
	Shed        int   `json:"shed"`
	Succeeded   int   `json:"succeeded"`
	Recoveries  int64 `json:"recoveries"`
}

// ServingReport is the on-disk shape of BENCH_serving.json.
type ServingReport struct {
	Study    string          `json:"study"`
	Routes   []ServingRoute  `json:"routes"`
	Overload ServingOverload `json:"overload"`
}

// servingSpec is the function the study registers.
var servingSpec = server.FunctionSpec{Name: "bench", Features: []string{"x"}, Variants: []string{"a", "b"}, Default: 0}

// servingArtifact trains a small deterministic model to serve as the
// pulled artifact.
func servingArtifact() ([]byte, error) {
	ds := &ml.Dataset{}
	for x := 0.0; x < 10; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	svm := ml.NewSVM(ml.LinearKernel{}, 1)
	if err := svm.Fit(ds); err != nil {
		return nil, err
	}
	data, _, err := ml.EncodeArtifact(&ml.Model{Classifier: svm})
	return data, err
}

// measure times fn over calls serial invocations and reduces to
// percentiles. The first invocation is a discarded warm-up.
func measure(route string, calls int, fn func() error) (ServingRoute, error) {
	if err := fn(); err != nil {
		return ServingRoute{}, fmt.Errorf("%s warm-up: %w", route, err)
	}
	lat := make([]float64, 0, calls)
	sum := 0.0
	for i := 0; i < calls; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return ServingRoute{}, fmt.Errorf("%s call %d: %w", route, i, err)
		}
		us := float64(time.Since(t0).Microseconds())
		lat = append(lat, us)
		sum += us
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return lat[idx]
	}
	return ServingRoute{
		Route: route, Calls: calls,
		P50Us: pct(0.50), P95Us: pct(0.95), P99Us: pct(0.99),
		MeanUs: sum / float64(len(lat)),
	}, nil
}

// Serving runs the full study: per-route latency against an uncontended
// daemon, then the overload phase against a deliberately tiny in-flight
// cap. calls is the per-route sample count (minimum 10).
func Serving(calls int) (ServingReport, error) {
	if calls < 10 {
		calls = 10
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// --- Latency phase --------------------------------------------------
	cfg := server.Config{
		Addr: "127.0.0.1:0",
		Registry: server.RegistryConfig{
			Tenants: []server.TenantConfig{{Name: "bench", Token: "bench-token"}},
			Workers: 1,
		},
	}
	d, err := server.NewDaemon(cfg)
	if err != nil {
		return ServingReport{}, err
	}
	if err := d.Start(cfg); err != nil {
		return ServingReport{}, err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		d.Shutdown(sctx)
	}()

	c, err := client.New(client.Config{BaseURL: "http://" + d.Addr(), Token: "bench-token"})
	if err != nil {
		return ServingReport{}, err
	}
	if err := c.RegisterFunction(ctx, servingSpec); err != nil {
		return ServingReport{}, err
	}
	art, err := servingArtifact()
	if err != nil {
		return ServingReport{}, err
	}
	if _, err := c.PushModel(ctx, servingSpec.Name, art, ""); err != nil {
		return ServingReport{}, err
	}
	pull, err := c.PullModel(ctx, servingSpec.Name, 0, "")
	if err != nil {
		return ServingReport{}, err
	}

	samples := make([]online.RemoteSample, 16)
	for i := range samples {
		samples[i] = online.RemoteSample{Features: []float64{float64(i % 10)}, Times: []float64{1, 2}, Predicted: -1}
	}

	report := ServingReport{Study: "serving"}
	routes := []struct {
		name string
		fn   func() error
	}{
		{"pull_model", func() error { _, err := c.PullModel(ctx, servingSpec.Name, 0, ""); return err }},
		{"pull_model_304", func() error { _, err := c.PullModel(ctx, servingSpec.Name, 0, pull.ETag); return err }},
		{"push_observations_16", func() error { _, err := c.PushObservations(ctx, servingSpec.Name, samples); return err }},
		{"get_deployment", func() error { _, err := c.Deployment(ctx, servingSpec.Name); return err }},
	}
	for _, r := range routes {
		row, err := measure(r.name, calls, r.fn)
		if err != nil {
			return ServingReport{}, err
		}
		report.Routes = append(report.Routes, row)
	}

	// --- Overload phase -------------------------------------------------
	// A tiny in-flight cap, with the observation class held at its
	// admission threshold by requests whose bodies never finish, forces
	// the admission controller to shed deterministically: every burst
	// push is answered 503 while the class is saturated, and releasing
	// the held slots counts a recovery transition. No retries, so every
	// 503 is counted, not absorbed.
	oCfg := server.Config{
		Addr: "127.0.0.1:0",
		Registry: server.RegistryConfig{
			Tenants:     []server.TenantConfig{{Name: "bench", Token: "bench-token"}},
			Workers:     1,
			MaxInflight: 4,
		},
	}
	od, err := server.NewDaemon(oCfg)
	if err != nil {
		return ServingReport{}, err
	}
	if err := od.Start(oCfg); err != nil {
		return ServingReport{}, err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		od.Shutdown(sctx)
	}()
	oc, err := client.New(client.Config{BaseURL: "http://" + od.Addr(), Token: "bench-token"})
	if err != nil {
		return ServingReport{}, err
	}
	if err := oc.RegisterFunction(ctx, servingSpec); err != nil {
		return ServingReport{}, err
	}

	const burst = 64
	body, err := json.Marshal(map[string]any{"samples": samples})
	if err != nil {
		return ServingReport{}, err
	}
	url := "http://" + od.Addr() + "/api/v1/functions/" + servingSpec.Name + "/observations"
	push := func(rd io.Reader) (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, rd)
		if err != nil {
			return 0, err
		}
		req.Header.Set("Authorization", "Bearer bench-token")
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Park MaxInflight/2 observation requests inside the body decoder so
	// the class sits exactly at its admission threshold.
	var held []*io.PipeWriter
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		pr, pw := io.Pipe()
		held = append(held, pw)
		wg.Add(1)
		go func() {
			defer wg.Done()
			push(pr)
		}()
	}
	// The class is saturated once a probe push sheds.
	for deadline := time.Now().Add(10 * time.Second); ; {
		code, err := push(bytes.NewReader(body))
		if err != nil {
			return ServingReport{}, err
		}
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			return ServingReport{}, fmt.Errorf("overload never saturated the observation class")
		}
		time.Sleep(time.Millisecond)
	}

	shed, accepted := 0, 0
	for i := 0; i < burst; i++ {
		code, err := push(bytes.NewReader(body))
		if err != nil {
			return ServingReport{}, err
		}
		switch code {
		case http.StatusServiceUnavailable:
			shed++
		case http.StatusAccepted:
			accepted++
		}
	}
	for _, pw := range held {
		pw.Close()
	}
	wg.Wait()
	// Post-recovery pushes are admitted again.
	for deadline := time.Now().Add(10 * time.Second); ; {
		code, err := push(bytes.NewReader(body))
		if err != nil {
			return ServingReport{}, err
		}
		if code == http.StatusAccepted {
			accepted++
			break
		}
		if time.Now().After(deadline) {
			return ServingReport{}, fmt.Errorf("overload never recovered after releasing held slots")
		}
		time.Sleep(time.Millisecond)
	}
	report.Overload = ServingOverload{
		MaxInflight: 4,
		Requests:    burst,
		Shed:        shed,
		Succeeded:   accepted,
		Recoveries:  od.ShedRecoveries(),
	}
	return report, nil
}

// FormatServing renders the study as an aligned table.
func FormatServing(r ServingReport) string {
	out := "Serving-latency study (live daemon over HTTP)\n"
	out += fmt.Sprintf("%-24s %8s %10s %10s %10s %10s\n", "route", "calls", "p50(us)", "p95(us)", "p99(us)", "mean(us)")
	for _, row := range r.Routes {
		out += fmt.Sprintf("%-24s %8d %10.0f %10.0f %10.0f %10.1f\n",
			row.Route, row.Calls, row.P50Us, row.P95Us, row.P99Us, row.MeanUs)
	}
	out += fmt.Sprintf("overload: %d concurrent pushes vs max_inflight=%d -> %d shed (503), %d accepted, %d recoveries\n",
		r.Overload.Requests, r.Overload.MaxInflight, r.Overload.Shed, r.Overload.Succeeded, r.Overload.Recoveries)
	return out
}

// WriteServingJSON writes the machine-readable BENCH_serving.json artifact.
func WriteServingJSON(w io.Writer, r ServingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
