package experiments

import (
	"fmt"
	"strings"

	"nitro/internal/autotuner"
	"nitro/internal/datasets"
	"nitro/internal/gpusim"
)

// ExtensionRow compares the paper's variant set with the extension set
// (SpMV +COO/+HYB, Solvers +GMRES) on identical corpora: the framework
// absorbs new variants without change, and the oracle itself improves when
// the new variants win somewhere.
type ExtensionRow struct {
	Benchmark string
	// BasePerf / ExtPerf are Nitro's mean performance against each set's
	// own oracle.
	BasePerf float64
	ExtPerf  float64
	// OracleSpeedup is mean(base oracle time / extended oracle time) —
	// > 1 means the new variants genuinely win on some inputs.
	OracleSpeedup float64
	// NewVariantPicks counts test instances where the extended model chose
	// one of the new variants.
	NewVariantPicks int
	NewVariantNames []string
}

// Extension runs the richer-variant-space experiment for SpMV and Solvers.
func Extension(opts Options, dev *gpusim.Device) ([]ExtensionRow, error) {
	opts = opts.Norm()
	type pair struct {
		base func(datasets.Config, *gpusim.Device) (*autotuner.Suite, error)
		ext  func(datasets.Config, *gpusim.Device) (*autotuner.Suite, error)
	}
	pairs := []pair{
		{base: datasets.SpMV, ext: datasets.SpMVExtended},
		{base: datasets.Solver, ext: datasets.SolverExtended},
		{base: datasets.BFS, ext: datasets.BFSExtended},
	}
	var out []ExtensionRow
	for _, pr := range pairs {
		baseSuite, err := pr.base(opts.Cfg, dev)
		if err != nil {
			return nil, err
		}
		extSuite, err := pr.ext(opts.Cfg, dev)
		if err != nil {
			return nil, err
		}
		baseModel, _, err := autotuner.Train(baseSuite.Train, opts.Train)
		if err != nil {
			return nil, err
		}
		extModel, _, err := autotuner.Train(extSuite.Train, opts.Train)
		if err != nil {
			return nil, err
		}
		baseEval := autotuner.Evaluate(baseModel, baseSuite, baseSuite.Test)
		extEval := autotuner.Evaluate(extModel, extSuite, extSuite.Test)

		row := ExtensionRow{
			Benchmark:       baseSuite.Name,
			BasePerf:        baseEval.MeanPerf,
			ExtPerf:         extEval.MeanPerf,
			NewVariantNames: extSuite.VariantNames[len(baseSuite.VariantNames):],
		}
		// Oracle improvement: corpora are identical (same cfg/seed), so
		// instances align one to one.
		var speedup float64
		n := 0
		for i := range baseSuite.Test {
			_, baseBest := baseSuite.Test[i].Best()
			_, extBest := extSuite.Test[i].Best()
			if baseBest > 0 && extBest > 0 && !isInf(baseBest) && !isInf(extBest) {
				speedup += baseBest / extBest
				n++
			}
		}
		if n > 0 {
			row.OracleSpeedup = speedup / float64(n)
		}
		for _, c := range extEval.Chosen {
			if c >= len(baseSuite.VariantNames) {
				row.NewVariantPicks++
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func isInf(v float64) bool { return v > 1e300 }

// FormatExtension renders the extension comparison.
func FormatExtension(rows []ExtensionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — richer variant sets on identical corpora\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s: base Nitro %.2f%% -> extended Nitro %.2f%% (vs each set's own oracle)\n",
			r.Benchmark, 100*r.BasePerf, 100*r.ExtPerf)
		fmt.Fprintf(&b, "  extended oracle %.3fx faster than base oracle; new variants (%s) picked on %d test inputs\n",
			r.OracleSpeedup, strings.Join(r.NewVariantNames, ", "), r.NewVariantPicks)
	}
	return b.String()
}

// PortabilityResult is the cross-architecture study the paper's future work
// sketches: a model trained on one device is deployed on another, then
// retrained natively. Feature vectors are device-independent; only the
// variant costs (and hence labels) change.
type PortabilityResult struct {
	TrainDevice string
	TestDevice  string
	// StalePerf is the Fermi-trained model evaluated against Kepler costs.
	StalePerf float64
	// NativePerf is the Kepler-trained model against Kepler costs.
	NativePerf float64
	// LabelShift is the fraction of test instances whose oracle variant
	// differs between the devices.
	LabelShift float64
}

// Portability trains the SpMV model on devA and measures it on devB's cost
// surface, against a natively retrained model.
func Portability(opts Options, devA, devB *gpusim.Device) (PortabilityResult, error) {
	opts = opts.Norm()
	suiteA, err := datasets.SpMV(opts.Cfg, devA)
	if err != nil {
		return PortabilityResult{}, err
	}
	suiteB, err := datasets.SpMV(opts.Cfg, devB)
	if err != nil {
		return PortabilityResult{}, err
	}
	modelA, _, err := autotuner.Train(suiteA.Train, opts.Train)
	if err != nil {
		return PortabilityResult{}, err
	}
	modelB, _, err := autotuner.Train(suiteB.Train, opts.Train)
	if err != nil {
		return PortabilityResult{}, err
	}
	res := PortabilityResult{
		TrainDevice: devA.Name,
		TestDevice:  devB.Name,
		StalePerf:   autotuner.Evaluate(modelA, suiteB, suiteB.Test).MeanPerf,
		NativePerf:  autotuner.Evaluate(modelB, suiteB, suiteB.Test).MeanPerf,
	}
	shifted, n := 0, 0
	for i := range suiteA.Test {
		a, _ := suiteA.Test[i].Best()
		b, _ := suiteB.Test[i].Best()
		if a < 0 || b < 0 {
			continue
		}
		n++
		if a != b {
			shifted++
		}
	}
	if n > 0 {
		res.LabelShift = float64(shifted) / float64(n)
	}
	return res, nil
}

// FormatPortability renders the cross-architecture study.
func FormatPortability(r PortabilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Portability — SpMV model trained on %s, deployed on %s\n", r.TrainDevice, r.TestDevice)
	fmt.Fprintf(&b, "  oracle variant changes on %.1f%% of test matrices across devices\n", 100*r.LabelShift)
	fmt.Fprintf(&b, "  stale (cross-device) model: %.2f%% of native oracle\n", 100*r.StalePerf)
	fmt.Fprintf(&b, "  natively retrained model:   %.2f%% of native oracle\n", 100*r.NativePerf)
	return b.String()
}
