package experiments

import (
	"strings"
	"testing"

	"nitro/internal/autotuner"
	"nitro/internal/datasets"
	"nitro/internal/gpusim"
)

// smallOpts keeps experiment tests fast: tiny corpora, no grid search.
func smallOpts() Options {
	return Options{
		Cfg:   datasets.Config{Seed: 5, Scale: 0.12, TrainCount: 18, TestCount: 24},
		Train: autotuner.TrainOptions{Classifier: "svm"},
	}
}

func buildSmall(t *testing.T) ([]*autotuner.Suite, Options, *gpusim.Device) {
	t.Helper()
	dev := gpusim.Fermi()
	opts := smallOpts()
	suites, err := BuildSuites(opts, dev)
	if err != nil {
		t.Fatal(err)
	}
	return suites, opts, dev
}

func TestSetupTable(t *testing.T) {
	suites, _, _ := buildSmall(t)
	rows := Setup(suites)
	if len(rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(rows))
	}
	text := FormatSetup(rows)
	for _, want := range []string{"SpMV", "Solvers", "BFS", "Histogram", "Sort", "CSR-Vec", "CG-Jacobi"} {
		if !strings.Contains(text, want) {
			t.Errorf("setup table missing %q", want)
		}
	}
}

func TestFig5(t *testing.T) {
	suites, opts, _ := buildSmall(t)
	rows, err := Fig5(suites, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 rows")
	}
	for _, r := range rows {
		if len(r.VariantPerf) != len(r.VariantNames) {
			t.Fatalf("%s: perf/name mismatch", r.Benchmark)
		}
		// Nitro must beat or match every individual variant on average
		// (within small-corpus noise).
		for i, p := range r.VariantPerf {
			if p > r.NitroPerf+0.08 {
				t.Errorf("%s: variant %s (%.3f) clearly beats Nitro (%.3f) on average",
					r.Benchmark, r.VariantNames[i], p, r.NitroPerf)
			}
		}
	}
	if s := FormatFig5(rows); !strings.Contains(s, "Nitro-tuned") {
		t.Error("Fig5 format missing Nitro bar")
	}
}

func TestFig6AndHeadline(t *testing.T) {
	suites, opts, dev := buildSmall(t)
	h, err := Headline(suites, opts, dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Rows) != 5 {
		t.Fatalf("want 5 rows")
	}
	for _, r := range h.Rows {
		if r.MeanPerf < 0.6 || r.MeanPerf > 1.0001 {
			t.Errorf("%s: mean perf %v out of plausible range", r.Benchmark, r.MeanPerf)
		}
		if r.Benchmark == "BFS" {
			if r.HybridPerf <= 0 {
				t.Error("BFS row missing hybrid comparison")
			}
			if r.NitroOverHybrid < 0.95 {
				t.Errorf("Nitro should be at least on par with Hybrid, got %vx", r.NitroOverHybrid)
			}
		}
	}
	text := FormatHeadline(h)
	for _, want := range []string{"Headline", "Hybrid", "paper"} {
		if !strings.Contains(text, want) {
			t.Errorf("headline text missing %q", want)
		}
	}
}

func TestFig7(t *testing.T) {
	suites, opts, _ := buildSmall(t)
	curves, err := Fig7(suites[:2], opts, 8) // two suites keep it fast
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		if len(c.Curve) < 2 {
			t.Fatalf("%s: curve too short: %v", c.Benchmark, c.Curve)
		}
		if c.FullPerf <= 0 {
			t.Fatalf("%s: no full-training reference", c.Benchmark)
		}
		final := c.Curve[len(c.Curve)-1]
		if final < 0.5*c.FullPerf {
			t.Errorf("%s: incremental end point %v far below full %v", c.Benchmark, final, c.FullPerf)
		}
	}
	if s := FormatFig7(curves); !strings.Contains(s, "iter") {
		t.Error("Fig7 format missing iterations")
	}
}

func TestFig8(t *testing.T) {
	suites, opts, _ := buildSmall(t)
	rows, err := Fig8(suites, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.PrefixPerf) != len(r.FeatureOrder) {
			t.Fatalf("%s: prefix/feature mismatch", r.Benchmark)
		}
		// Cost fractions must be non-decreasing.
		for k := 1; k < len(r.PrefixCostFrac); k++ {
			if r.PrefixCostFrac[k] < r.PrefixCostFrac[k-1]-1e-12 {
				t.Errorf("%s: cumulative cost decreased", r.Benchmark)
			}
		}
		if m := r.MinimalFeatures(0.95); m < 1 || m > len(r.FeatureOrder) {
			t.Errorf("%s: minimal features %d out of range", r.Benchmark, m)
		}
	}
	// Cheap O(1) features must come first for BFS (AvgOutDeg et al. before
	// the O(V) degree statistics).
	for _, r := range rows {
		if r.Benchmark == "BFS" {
			if r.FeatureOrder[len(r.FeatureOrder)-1] == "AvgOutDeg" {
				t.Error("BFS: AvgOutDeg should be among the cheapest features")
			}
		}
	}
	if s := FormatFig8(rows); !strings.Contains(s, "feature cost") {
		t.Error("Fig8 format missing cost column")
	}
}

func TestOptionsNorm(t *testing.T) {
	o := Options{}.Norm()
	if o.Train.Classifier != "svm" || !o.Train.GridSearch {
		t.Errorf("defaults wrong: %+v", o.Train)
	}
	if len(o.Train.Grid.CValues) == 0 {
		t.Error("default grid empty")
	}
	custom := Options{Train: autotuner.TrainOptions{Classifier: "knn"}}.Norm()
	if custom.Train.Classifier != "knn" || custom.Train.GridSearch {
		t.Error("custom classifier overridden")
	}
}
