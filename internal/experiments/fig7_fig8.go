package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"nitro/internal/autotuner"
	"nitro/internal/ml"
)

// Fig7Curve is one benchmark's incremental-tuning trajectory: test-set
// performance (fraction of exhaustive search) after the seed model and after
// each active-learning iteration, against the full-training reference.
type Fig7Curve struct {
	Benchmark string
	FullPerf  float64
	SeedSize  int
	// Curve[k] is the performance after k queries (Curve[0] = seed model).
	Curve []float64
	// RandomCurve is the random-sampling ablation trajectory (same budget).
	RandomCurve []float64
}

// IterationsToReach returns the smallest query count whose performance is at
// least frac*FullPerf, or -1 if never reached.
func (c Fig7Curve) IterationsToReach(frac float64) int {
	target := frac * c.FullPerf
	for k, p := range c.Curve {
		if p >= target {
			return k
		}
	}
	return -1
}

// Fig7 runs incremental tuning (BvSB) plus the random-sampling ablation on
// every suite.
func Fig7(suites []*autotuner.Suite, opts Options, maxIters int) ([]Fig7Curve, error) {
	opts = opts.Norm()
	// Incremental tuning refits every iteration; grid search per refit is
	// prohibitive and the paper tunes kernel parameters once — use plain
	// SVM defaults inside the loop.
	inner := opts.Train
	inner.GridSearch = false
	out := make([]Fig7Curve, 0, len(suites))
	for _, s := range suites {
		full, _, err := autotuner.FullTrainPerf(s, opts.Train)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		res, err := autotuner.IncrementalTune(s, autotuner.IncrementalOptions{
			TrainOptions:  inner,
			MaxIterations: maxIters,
		}, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rnd, err := autotuner.IncrementalTune(s, autotuner.IncrementalOptions{
			TrainOptions:  inner,
			MaxIterations: maxIters,
			Strategy:      ml.RandomStrategy{Rng: rand.New(rand.NewSource(opts.Cfg.Seed + 99))},
		}, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		out = append(out, Fig7Curve{
			Benchmark:   s.Name,
			FullPerf:    full,
			SeedSize:    res.SeedSize,
			Curve:       res.PerfCurve,
			RandomCurve: rnd.PerfCurve,
		})
	}
	return out, nil
}

// FormatFig7 renders the incremental-tuning trajectories.
func FormatFig7(curves []Fig7Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — incremental tuning: %% of full-training performance vs BvSB iterations\n")
	for _, c := range curves {
		fmt.Fprintf(&b, "%s (full-training perf %.2f%%, seed %d):\n", c.Benchmark, 100*c.FullPerf, c.SeedSize)
		marks := []int{0, 5, 10, 15, 20, 25, 30, 40, 50}
		for _, k := range marks {
			if k >= len(c.Curve) {
				break
			}
			rnd := ""
			if k < len(c.RandomCurve) && c.FullPerf > 0 {
				rnd = fmt.Sprintf("  (random: %5.1f%%)", 100*c.RandomCurve[k]/c.FullPerf)
			}
			if c.FullPerf > 0 {
				fmt.Fprintf(&b, "  iter %-3d %5.1f%% of full%s\n", k, 100*c.Curve[k]/c.FullPerf, rnd)
			}
		}
		if k := c.IterationsToReach(0.90); k >= 0 {
			fmt.Fprintf(&b, "  reaches 90%% of full-training performance after %d iterations (paper: ~25)\n", k)
		} else {
			fmt.Fprintf(&b, "  did not reach 90%% of full-training performance within the budget\n")
		}
	}
	return b.String()
}

// Fig8Row is one benchmark's feature-overhead study: features are added in
// increasing evaluation-cost order and the model retrained on each prefix.
type Fig8Row struct {
	Benchmark string
	// FeatureOrder names the features in the cost order used.
	FeatureOrder []string
	// PrefixPerf[k] is the test performance using the k+1 cheapest features.
	PrefixPerf []float64
	// PrefixCostFrac[k] is the cumulative feature-evaluation cost of that
	// prefix as a fraction of the mean oracle variant time.
	PrefixCostFrac []float64
}

// MinimalFeatures returns the smallest prefix size achieving at least frac of
// the all-features performance.
func (r Fig8Row) MinimalFeatures(frac float64) int {
	full := r.PrefixPerf[len(r.PrefixPerf)-1]
	for k, p := range r.PrefixPerf {
		if p >= frac*full {
			return k + 1
		}
	}
	return len(r.PrefixPerf)
}

// Fig8 runs the feature-evaluation overhead study on every suite.
func Fig8(suites []*autotuner.Suite, opts Options) ([]Fig8Row, error) {
	opts = opts.Norm()
	out := make([]Fig8Row, 0, len(suites))
	for _, s := range suites {
		nFeat := len(s.FeatureNames)
		order := featureOrderByCost(s.Train, nFeat)
		row := Fig8Row{Benchmark: s.Name}
		oracle := autotuner.OracleMeanTime(s.Test)
		var cumCost float64
		costSums := make([]float64, nFeat)
		for _, in := range s.Test {
			for j, c := range in.FeatureCosts {
				costSums[j] += c
			}
		}
		for k := 1; k <= nFeat; k++ {
			keep := order[:k]
			trainP := projectInstances(s.Train, keep)
			testP := projectInstances(s.Test, keep)
			model, _, err := autotuner.Train(trainP, opts.Train)
			if err != nil {
				return nil, fmt.Errorf("%s/%d features: %w", s.Name, k, err)
			}
			eval := autotuner.Evaluate(model, s, testP)
			row.PrefixPerf = append(row.PrefixPerf, eval.MeanPerf)
			cumCost += costSums[order[k-1]] / float64(max(len(s.Test), 1))
			frac := 0.0
			if oracle > 0 {
				frac = cumCost / oracle
			}
			row.PrefixCostFrac = append(row.PrefixCostFrac, frac)
		}
		for _, j := range order {
			row.FeatureOrder = append(row.FeatureOrder, s.FeatureNames[j])
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatFig8 renders the overhead study.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — performance as features are added in increasing evaluation-cost order\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s:\n", r.Benchmark)
		for k := range r.PrefixPerf {
			fmt.Fprintf(&b, "  +%-16s perf %6.2f%%  cum. feature cost %8.4f%% of variant time\n",
				r.FeatureOrder[k], 100*r.PrefixPerf[k], 100*r.PrefixCostFrac[k])
		}
		fmt.Fprintf(&b, "  minimal feature set for 95%% of full performance: %d of %d\n",
			r.MinimalFeatures(0.95), len(r.FeatureOrder))
	}
	return b.String()
}
