package gpusim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kernel accumulates the operation charges of one simulated kernel launch.
// Obtain one from Device-bound Run.Launch, charge operations against it while
// performing the real computation, then call Finish to convert the charges to
// a simulated time.
type Kernel struct {
	dev     *Device
	name    string
	threads int

	memBytes     float64 // perfectly coalesced traffic
	memTxns      float64 // discrete transactions (uncoalesced/gather misses)
	texHits      float64 // texture-cache hits
	flopsSP      float64
	flopsDP      float64
	atomicNs     float64 // serialized atomic time
	divergenceMu float64 // multiplier >= 1 applied to compute time
	throughputMu float64 // multiplier >= 1 applied to the kernel body
	imbalanceMu  float64 // multiplier >= 1 applied to the whole kernel
	extraNs      float64 // direct latency charges (e.g. barriers)

	finished bool
	timeNs   float64
}

// Breakdown reports where a finished kernel's simulated time went, in
// nanoseconds. Memory and compute overlap (roofline), so Total is not the sum
// of the parts.
type Breakdown struct {
	Name      string
	Threads   int
	MemoryNs  float64
	ComputeNs float64
	AtomicNs  float64
	ExtraNs   float64
	LaunchNs  float64
	TotalNs   float64
}

// GlobalRead charges fully coalesced global-memory reads of the given number
// of bytes.
func (k *Kernel) GlobalRead(bytes float64) { k.memBytes += bytes }

// GlobalWrite charges fully coalesced global-memory writes.
func (k *Kernel) GlobalWrite(bytes float64) { k.memBytes += bytes }

// StridedAccess charges n accesses of elemBytes each with a fixed stride in
// bytes between consecutive lanes. Stride <= elemBytes is fully coalesced;
// larger strides waste a growing fraction of each transaction until every
// access costs one full transaction.
func (k *Kernel) StridedAccess(n int, elemBytes, strideBytes int) {
	if n <= 0 {
		return
	}
	if strideBytes <= elemBytes {
		k.memBytes += float64(n * elemBytes)
		return
	}
	perTxn := float64(k.dev.TransactionBytes) / float64(strideBytes)
	if perTxn > 1 {
		perTxn = 1
	}
	// Each transaction yields perTxn useful elements (at most 1).
	k.memTxns += float64(n) / math.Max(perTxn*float64(k.dev.TransactionBytes)/float64(elemBytes), 1)
}

// Gather charges n indexed loads of elemBytes each from a region of
// footprintBytes, served by the L1/global path (no texture cache). Locality
// is inferred from the footprint: if the whole region fits in a transaction's
// worth of reuse the loads coalesce, otherwise each miss costs a transaction.
// reuse is the average number of times each distinct element is touched
// (>= 1); higher reuse amortizes transactions only slightly on the global
// path, which is exactly why texture caching pays off for SpMV's x-vector.
func (k *Kernel) Gather(n int, elemBytes int, footprintBytes float64, reuse float64) {
	if n <= 0 {
		return
	}
	if reuse < 1 {
		reuse = 1
	}
	// Distinct cache lines touched:
	lines := footprintBytes / float64(k.dev.TransactionBytes)
	if lines < 1 {
		lines = 1
	}
	// The global path has a small implicit L1; model a weak hit rate that
	// only helps for tiny footprints.
	const l1Bytes = 16 * 1024
	hit := 0.0
	if footprintBytes > 0 && footprintBytes < l1Bytes {
		hit = 1 - footprintBytes/l1Bytes
	}
	misses := float64(n) * (1 - hit)
	k.memTxns += misses
	k.texHits += float64(n) * hit // hits cost like texture hits
	_ = lines
	_ = elemBytes
}

// TextureGather charges n indexed loads of elemBytes each through the texture
// cache. The hit rate is estimated from the working-set footprint relative to
// the per-SM texture cache, boosted by the average reuse per element.
func (k *Kernel) TextureGather(n int, elemBytes int, footprintBytes float64, reuse float64) {
	if n <= 0 {
		return
	}
	if reuse < 1 {
		reuse = 1
	}
	cache := float64(k.dev.TexCacheBytes)
	var hit float64
	if footprintBytes <= cache {
		hit = 1 - 1/reuse // compulsory misses only
	} else {
		// Working set exceeds cache: the retained fraction shrinks with
		// the footprint (an 1/8 weighting reflects line-granularity
		// spatial locality keeping short-range reuse alive).
		hit = (1 - 1/reuse) * cache / (cache + footprintBytes/8)
	}
	if hit < 0 {
		hit = 0
	}
	if hit > 0.98 {
		hit = 0.98
	}
	misses := float64(n) * (1 - hit)
	k.memTxns += misses
	// Every texture access — hit or miss — pays the texture-pipeline cost,
	// which is why texture binding loses when there is no reuse to exploit.
	k.texHits += float64(n)
}

// ComputeSP charges single-precision floating-point operations.
func (k *Kernel) ComputeSP(flops float64) { k.flopsSP += flops }

// ComputeDP charges double-precision floating-point operations.
func (k *Kernel) ComputeDP(flops float64) { k.flopsDP += flops }

// SharedAtomics charges ops shared-memory atomic updates spread over addrs
// distinct addresses with threadsPerBlock concurrent threads per block.
// Contending updates to the same address serialize within the block.
func (k *Kernel) SharedAtomics(ops int, addrs int, threadsPerBlock int) {
	k.atomics(float64(ops), addrs, threadsPerBlock, k.dev.SharedAtomicNs)
}

// GlobalAtomics charges ops global-memory atomic updates spread over addrs
// distinct addresses with the whole grid contending.
func (k *Kernel) GlobalAtomics(ops int, addrs int) {
	k.atomics(float64(ops), addrs, k.threads, k.dev.GlobalAtomicNs)
}

// SkewedGlobalAtomics is GlobalAtomics with an explicit hottest-address share
// (maxShare in [1/addrs, 1]): the serialized chain length is governed by the
// hottest bin, which is what makes atomic histograms collapse on skewed data.
func (k *Kernel) SkewedGlobalAtomics(ops int, addrs int, maxShare float64) {
	k.skewedAtomics(float64(ops), addrs, k.threads, maxShare, k.dev.GlobalAtomicNs)
}

// SkewedSharedAtomics is SharedAtomics with an explicit hottest-address share.
func (k *Kernel) SkewedSharedAtomics(ops int, addrs int, threadsPerBlock int, maxShare float64) {
	k.skewedAtomics(float64(ops), addrs, threadsPerBlock, maxShare, k.dev.SharedAtomicNs)
}

func (k *Kernel) atomics(ops float64, addrs, concurrency int, opNs float64) {
	if addrs <= 0 {
		addrs = 1
	}
	k.skewedAtomics(ops, addrs, concurrency, 1/float64(addrs), opNs)
}

func (k *Kernel) skewedAtomics(ops float64, addrs, concurrency int, maxShare, opNs float64) {
	if ops <= 0 {
		return
	}
	if addrs <= 0 {
		addrs = 1
	}
	if maxShare < 1/float64(addrs) {
		maxShare = 1 / float64(addrs)
	}
	if maxShare > 1 {
		maxShare = 1
	}
	if concurrency <= 0 {
		concurrency = 1
	}
	// Updates to distinct addresses proceed in parallel, up to the atomic
	// pipeline width; updates to the same address serialize. The serialized
	// chain on the hottest address is ops*maxShare long, but only
	// materializes to the extent there are concurrent threads contending
	// for it.
	const pipelineWidth = 128
	contended := math.Min(float64(concurrency), ops*maxShare)
	parallelNs := ops * opNs / math.Min(float64(addrs), pipelineWidth)
	serialNs := ops * maxShare * opNs * math.Min(1, contended/32)
	k.atomicNs += math.Max(parallelNs, serialNs)
}

// Throughput applies a pipeline-efficiency penalty to the whole kernel body:
// eff in (0, 1] is the fraction of issue slots doing useful work. Warp-per-row
// decompositions with rows much shorter than a warp leave most lanes idle in
// every instruction — memory and compute alike — which is what makes ELL beat
// CSR-vector on fine regular rows (Bell & Garland).
func (k *Kernel) Throughput(eff float64) {
	if eff <= 0 || eff >= 1 {
		return
	}
	mu := 1 / eff
	if mu > k.throughputMu {
		k.throughputMu = mu
	}
}

// Divergence applies a warp-divergence penalty: activeFraction is the average
// fraction of lanes doing useful work in divergent sections (1 = no
// divergence). Compute charges are scaled by 1/activeFraction.
func (k *Kernel) Divergence(activeFraction float64) {
	if activeFraction <= 0 {
		activeFraction = 1.0 / float64(k.dev.WarpSize)
	}
	if activeFraction > 1 {
		activeFraction = 1
	}
	mu := 1 / activeFraction
	if mu > k.divergenceMu {
		k.divergenceMu = mu
	}
}

// Imbalance applies a load-imbalance penalty from the heaviest and mean
// per-worker work: a kernel finishes when its slowest SM does. The multiplier
// is softened because the scheduler interleaves many blocks per SM.
func (k *Kernel) Imbalance(maxWork, meanWork float64) {
	if meanWork <= 0 || maxWork <= meanWork {
		return
	}
	ratio := maxWork / meanWork
	// With B blocks per SM the tail is amortized; model sqrt softening.
	mu := 1 + (math.Sqrt(ratio)-1)*0.5
	if mu > k.imbalanceMu {
		k.imbalanceMu = mu
	}
}

// Latency charges a direct, non-overlappable latency in nanoseconds (block
// barriers, global sync loops inside fused kernels, and similar).
func (k *Kernel) Latency(ns float64) { k.extraNs += ns }

// Finish converts the accumulated charges to a simulated kernel time and
// returns it in nanoseconds (including launch overhead). Finish may be called
// once; subsequent calls return the same value.
func (k *Kernel) Finish() float64 {
	if k.finished {
		return k.timeNs
	}
	k.finished = true
	occ := k.dev.occupancy(k.threads)

	// Memory: coalesced bytes stream at peak bandwidth; discrete
	// transactions move TransactionBytes each and are additionally
	// latency-limited at low occupancy.
	bw := k.dev.bytesPerNs() * occ
	memNs := k.memBytes / bw
	memNs += k.memTxns * float64(k.dev.TransactionBytes) / bw
	// Latency bound: each SM can overlap many outstanding transactions;
	// with low parallelism latency dominates.
	inflight := math.Max(float64(k.threads)/float64(k.dev.WarpSize), 1) // warps in flight
	maxOutstanding := math.Min(inflight*2, float64(k.dev.SMCount*48))
	latNs := k.memTxns * k.dev.MemLatencyNs / maxOutstanding
	if latNs > memNs {
		memNs = latNs
	}
	memNs += k.texHits * k.dev.TexHitNs / math.Max(float64(k.dev.SMCount), 1)

	computeNs := (k.flopsSP/k.dev.PeakGFlopsSP + k.flopsDP/k.dev.PeakGFlopsDP) / occ
	if k.divergenceMu > 1 {
		computeNs *= k.divergenceMu
	}

	// Roofline: memory and compute overlap; atomics and direct latencies
	// do not.
	body := math.Max(memNs, computeNs)
	if k.throughputMu > 1 {
		body *= k.throughputMu
	}
	body += k.atomicNs + k.extraNs
	if k.imbalanceMu > 1 {
		body *= k.imbalanceMu
	}
	k.timeNs = body + k.dev.LaunchOverheadNs
	return k.timeNs
}

// Breakdown returns the post-Finish component report; it finishes the kernel
// if needed.
func (k *Kernel) Breakdown() Breakdown {
	total := k.Finish()
	occ := k.dev.occupancy(k.threads)
	bw := k.dev.bytesPerNs() * occ
	memNs := k.memBytes/bw + k.memTxns*float64(k.dev.TransactionBytes)/bw
	computeNs := (k.flopsSP/k.dev.PeakGFlopsSP + k.flopsDP/k.dev.PeakGFlopsDP) / occ * math.Max(k.divergenceMu, 1)
	return Breakdown{
		Name:      k.name,
		Threads:   k.threads,
		MemoryNs:  memNs,
		ComputeNs: computeNs,
		AtomicNs:  k.atomicNs,
		ExtraNs:   k.extraNs,
		LaunchNs:  k.dev.LaunchOverheadNs,
		TotalNs:   total,
	}
}

// Run aggregates the kernels of one simulated variant execution.
type Run struct {
	dev     *Device
	totalNs float64
	kernels []Breakdown
}

// NewRun starts a simulated execution on dev.
func NewRun(dev *Device) *Run { return &Run{dev: dev} }

// Device returns the device the run executes on.
func (r *Run) Device() *Device { return r.dev }

// Launch starts a kernel with the given launched-thread count. The returned
// kernel must be completed with Run.Done (or Kernel.Finish plus Run.AddNs).
func (r *Run) Launch(name string, threads int) *Kernel {
	if threads < 1 {
		threads = 1
	}
	return &Kernel{dev: r.dev, name: name, threads: threads, divergenceMu: 1, throughputMu: 1, imbalanceMu: 1}
}

// Done finishes k and adds its time to the run.
func (r *Run) Done(k *Kernel) {
	r.totalNs += k.Finish()
	r.kernels = append(r.kernels, k.Breakdown())
}

// AddNs adds a raw latency (host-side work, device sync, transfer).
func (r *Run) AddNs(ns float64) { r.totalNs += ns }

// HostSync charges one host<->device synchronization.
func (r *Run) HostSync() { r.totalNs += r.dev.LaunchOverheadNs / 2 }

// Seconds returns the total simulated time in seconds.
func (r *Run) Seconds() float64 { return r.totalNs * 1e-9 }

// Nanoseconds returns the total simulated time in nanoseconds.
func (r *Run) Nanoseconds() float64 { return r.totalNs }

// Kernels returns the breakdown of every completed kernel, slowest first.
func (r *Run) Kernels() []Breakdown {
	out := make([]Breakdown, len(r.kernels))
	copy(out, r.kernels)
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	return out
}

// String summarizes the run.
func (r *Run) String() string {
	return fmt.Sprintf("run on %s: %d kernels, %.3f ms", r.dev.Name, len(r.kernels), r.totalNs*1e-6)
}

// String renders one kernel's cost breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("%-24s %8d thr  mem %9.2fus  cmp %9.2fus  atom %9.2fus  extra %9.2fus  total %9.2fus",
		b.Name, b.Threads, b.MemoryNs*1e-3, b.ComputeNs*1e-3, b.AtomicNs*1e-3, b.ExtraNs*1e-3, b.TotalNs*1e-3)
}

// Report renders the whole run: every kernel's breakdown (slowest first,
// capped at maxKernels; <= 0 means all) plus the total. It is the trace
// facility experiments and examples use to explain *why* a variant won.
func (r *Run) Report(maxKernels int) string {
	ks := r.Kernels()
	if maxKernels > 0 && len(ks) > maxKernels {
		ks = ks[:maxKernels]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.String())
	for _, b := range ks {
		fmt.Fprintf(&sb, "  %s\n", b)
	}
	return sb.String()
}

// HostCost models host-side (CPU) feature-computation cost: a simple
// bandwidth/op model used to account feature-evaluation overhead in Fig. 8.
type HostCost struct {
	// BandwidthGBs is sequential host memory bandwidth.
	BandwidthGBs float64
	// OpNs is the per-element scalar operation cost.
	OpNs float64
}

// DefaultHost returns a host cost model for the paper's Core i7 930 host.
func DefaultHost() HostCost { return HostCost{BandwidthGBs: 12, OpNs: 1.2} }

// Scan returns the cost in seconds of streaming over bytes of data applying
// ops scalar operations per element of elemBytes.
func (h HostCost) Scan(bytes float64, opsPerElem float64, elemBytes int) float64 {
	if elemBytes <= 0 {
		elemBytes = 8
	}
	elems := bytes / float64(elemBytes)
	ns := bytes/h.BandwidthGBs + elems*opsPerElem*h.OpNs
	return ns * 1e-9
}

// Constant returns the (tiny) cost of an O(1) feature read.
func (h HostCost) Constant() float64 { return 50e-9 }
