// Package gpusim provides a deterministic analytic performance model of a
// Fermi-class GPU (modelled after the NVIDIA Tesla C2050 used in the Nitro
// paper). Code variants perform their real computation in Go and charge the
// memory traffic, arithmetic, atomics and kernel launches they would incur on
// the GPU to a Kernel cost accumulator; the model converts the charges into a
// simulated execution time in seconds.
//
// The model is intentionally simple — a roofline-style combination of
// bandwidth, latency, compute throughput, atomic serialization, warp
// divergence and load imbalance — but it encodes exactly the architectural
// effects that drive variant crossover in the paper: memory coalescing,
// zero fill-in overhead for DIA/ELL formats, texture-cache reuse for gathered
// loads, shared vs global atomic contention, kernel launch overhead for
// iterative (non-fused) kernels, and SIMD lane under-utilization.
//
// All results are deterministic: the same input always produces the same
// simulated time, which makes exhaustive-search labelling and every
// experiment in this repository reproducible.
package gpusim

import "fmt"

// Device describes the modelled GPU. The zero value is not useful; construct
// devices with Fermi or NewDevice.
type Device struct {
	// Name identifies the device in reports.
	Name string
	// SMCount is the number of streaming multiprocessors.
	SMCount int
	// WarpSize is the SIMD width of one warp.
	WarpSize int
	// MaxThreadsPerSM is the resident-thread capacity of one SM; together
	// with SMCount it determines full occupancy.
	MaxThreadsPerSM int
	// ClockGHz is the core clock in GHz.
	ClockGHz float64
	// CoresPerSM is the number of scalar cores per SM.
	CoresPerSM int
	// MemBandwidthGBs is the peak global-memory bandwidth in GB/s.
	MemBandwidthGBs float64
	// MemLatencyNs is the latency of one uncached global-memory transaction.
	MemLatencyNs float64
	// TransactionBytes is the minimum global-memory transaction size; an
	// uncoalesced access wastes the difference between the element size and
	// the transaction size.
	TransactionBytes int
	// TexCacheBytes is the per-SM texture cache capacity used by the
	// texture-path gather model.
	TexCacheBytes int
	// TexHitNs is the per-access texture-pipeline cost (paid by hits and
	// misses alike); it is what makes texture binding a loss when the
	// access stream has no reuse for the cache to exploit.
	TexHitNs float64
	// SharedAtomicNs is the per-operation cost of a shared-memory atomic in
	// the absence of contention.
	SharedAtomicNs float64
	// GlobalAtomicNs is the per-operation cost of a global-memory atomic in
	// the absence of contention.
	GlobalAtomicNs float64
	// LaunchOverheadNs is the fixed host-side cost of one kernel launch.
	LaunchOverheadNs float64
	// PeakGFlopsSP and PeakGFlopsDP are the single/double-precision peak
	// arithmetic rates in GFLOP/s.
	PeakGFlopsSP float64
	PeakGFlopsDP float64
}

// Fermi returns a device modelled after the NVIDIA Tesla C2050 (Fermi) card
// used in the Nitro paper's evaluation.
func Fermi() *Device {
	return &Device{
		Name:             "Tesla C2050 (simulated)",
		SMCount:          14,
		WarpSize:         32,
		MaxThreadsPerSM:  1536,
		ClockGHz:         1.15,
		CoresPerSM:       32,
		MemBandwidthGBs:  144,
		MemLatencyNs:     400,
		TransactionBytes: 32,
		TexCacheBytes:    12 * 1024,
		TexHitNs:         2.0,
		SharedAtomicNs:   2.2,
		GlobalAtomicNs:   6,
		LaunchOverheadNs: 5000,
		PeakGFlopsSP:     1030,
		PeakGFlopsDP:     515,
	}
}

// Kepler returns a device modelled after the NVIDIA Tesla K20c (Kepler), the
// generation after the paper's C2050. The paper's future work calls for
// porting tuned libraries across architectures; the experiment harness uses
// this device to study how a model trained on one architecture transfers to
// another (different bandwidth/compute balance, larger texture path, cheaper
// atomics).
func Kepler() *Device {
	return &Device{
		Name:             "Tesla K20c (simulated)",
		SMCount:          13,
		WarpSize:         32,
		MaxThreadsPerSM:  2048,
		ClockGHz:         0.706,
		CoresPerSM:       192,
		MemBandwidthGBs:  208,
		MemLatencyNs:     350,
		TransactionBytes: 32,
		TexCacheBytes:    48 * 1024,
		TexHitNs:         1.2,
		SharedAtomicNs:   1.4,
		GlobalAtomicNs:   2.5,
		LaunchOverheadNs: 4000,
		PeakGFlopsSP:     3520,
		PeakGFlopsDP:     1170,
	}
}

// NewDevice returns a copy of Fermi with the given name, for building
// hypothetical devices in tests and ablations.
func NewDevice(name string) *Device {
	d := Fermi()
	d.Name = name
	return d
}

// MaxResidentThreads is the whole-device thread capacity.
func (d *Device) MaxResidentThreads() int { return d.SMCount * d.MaxThreadsPerSM }

// bytesPerNs is the peak bandwidth expressed in bytes per nanosecond.
func (d *Device) bytesPerNs() float64 { return d.MemBandwidthGBs } // GB/s == B/ns

// occupancy maps a launched-thread count to a utilization factor in (0, 1].
// Small launches cannot saturate bandwidth or hide latency, so their
// effective throughput is scaled down.
func (d *Device) occupancy(threads int) float64 {
	if threads <= 0 {
		threads = 1
	}
	occ := float64(threads) / float64(d.MaxResidentThreads())
	if occ > 1 {
		occ = 1
	}
	// Even a tiny launch keeps a few warps in flight; floor the factor so
	// costs stay finite and ordering-sane.
	const floor = 0.02
	if occ < floor {
		occ = floor
	}
	return occ
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s: %d SMs x %d threads, %.0f GB/s, %.0f/%.0f GFLOPS SP/DP",
		d.Name, d.SMCount, d.MaxThreadsPerSM, d.MemBandwidthGBs, d.PeakGFlopsSP, d.PeakGFlopsDP)
}
