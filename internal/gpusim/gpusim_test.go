package gpusim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFermiDefaults(t *testing.T) {
	d := Fermi()
	if d.SMCount != 14 || d.WarpSize != 32 {
		t.Fatalf("unexpected Fermi geometry: %+v", d)
	}
	if d.MaxResidentThreads() != 14*1536 {
		t.Fatalf("MaxResidentThreads = %d", d.MaxResidentThreads())
	}
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestOccupancyBounds(t *testing.T) {
	d := Fermi()
	cases := []int{-5, 0, 1, 32, 1024, d.MaxResidentThreads(), 10 * d.MaxResidentThreads()}
	for _, n := range cases {
		occ := d.occupancy(n)
		if occ <= 0 || occ > 1 {
			t.Errorf("occupancy(%d) = %v out of (0,1]", n, occ)
		}
	}
	if d.occupancy(10) >= d.occupancy(d.MaxResidentThreads()) {
		t.Error("occupancy should grow with thread count")
	}
}

func TestCoalescedFasterThanScattered(t *testing.T) {
	d := Fermi()
	n := 1 << 20

	r1 := NewRun(d)
	k1 := r1.Launch("coalesced", n)
	k1.GlobalRead(float64(n * 4))
	r1.Done(k1)

	r2 := NewRun(d)
	k2 := r2.Launch("scattered", n)
	k2.Gather(n, 4, float64(n*4*64), 1) // huge footprint, no reuse
	r2.Done(k2)

	if r1.Seconds() >= r2.Seconds() {
		t.Errorf("coalesced (%v s) should beat scattered (%v s)", r1.Seconds(), r2.Seconds())
	}
}

func TestTextureGatherBeatsGlobalGatherWithReuse(t *testing.T) {
	d := Fermi()
	n := 1 << 20
	footprint := float64(64 * 1024) // larger than tex cache
	reuse := 20.0

	rg := NewRun(d)
	kg := rg.Launch("gather", n)
	kg.Gather(n, 4, footprint, reuse)
	rg.Done(kg)

	rt := NewRun(d)
	kt := rt.Launch("tex", n)
	kt.TextureGather(n, 4, footprint, reuse)
	rt.Done(kt)

	if rt.Seconds() >= rg.Seconds() {
		t.Errorf("texture gather with reuse (%v) should beat plain gather (%v)", rt.Seconds(), rg.Seconds())
	}
}

func TestTextureGatherNoReuseNotFree(t *testing.T) {
	d := Fermi()
	n := 1 << 18
	footprint := float64(64 << 20) // 64 MB, single use
	rt := NewRun(d)
	kt := rt.Launch("tex", n)
	kt.TextureGather(n, 4, footprint, 1)
	rt.Done(kt)

	rc := NewRun(d)
	kc := rc.Launch("coalesced", n)
	kc.GlobalRead(float64(n * 4))
	rc.Done(kc)

	if rt.Seconds() <= rc.Seconds() {
		t.Errorf("no-reuse texture gather (%v) should cost more than coalesced (%v)", rt.Seconds(), rc.Seconds())
	}
}

func TestAtomicSkewSerializes(t *testing.T) {
	d := Fermi()
	n := 1 << 20

	uniform := NewRun(d)
	ku := uniform.Launch("uniform", n)
	ku.SkewedGlobalAtomics(n, 256, 1.0/256)
	uniform.Done(ku)

	skewed := NewRun(d)
	ks := skewed.Launch("skewed", n)
	ks.SkewedGlobalAtomics(n, 256, 0.9)
	skewed.Done(ks)

	if skewed.Seconds() <= 2*uniform.Seconds() {
		t.Errorf("skewed atomics (%v) should be much slower than uniform (%v)", skewed.Seconds(), uniform.Seconds())
	}
}

func TestSharedAtomicsCheaperThanGlobal(t *testing.T) {
	d := Fermi()
	n := 1 << 20

	sh := NewRun(d)
	k1 := sh.Launch("shared", n)
	k1.SkewedSharedAtomics(n, 256, 256, 0.5)
	sh.Done(k1)

	gl := NewRun(d)
	k2 := gl.Launch("global", n)
	k2.SkewedGlobalAtomics(n, 256, 0.5)
	gl.Done(k2)

	if sh.Seconds() >= gl.Seconds() {
		t.Errorf("shared atomics (%v) should beat global atomics (%v)", sh.Seconds(), gl.Seconds())
	}
}

func TestLaunchOverheadAccumulates(t *testing.T) {
	d := Fermi()
	many := NewRun(d)
	for i := 0; i < 100; i++ {
		k := many.Launch("tiny", 32)
		k.GlobalRead(1024)
		many.Done(k)
	}
	one := NewRun(d)
	k := one.Launch("fused", 3200)
	k.GlobalRead(102400)
	one.Done(k)

	if many.Seconds() <= one.Seconds() {
		t.Errorf("100 launches (%v) should cost more than 1 fused launch (%v)", many.Seconds(), one.Seconds())
	}
	if got := many.Nanoseconds(); got < 100*d.LaunchOverheadNs {
		t.Errorf("expected at least 100 launch overheads, got %v ns", got)
	}
}

func TestDivergencePenalty(t *testing.T) {
	d := Fermi()
	base := NewRun(d)
	kb := base.Launch("full", 1<<16)
	kb.ComputeDP(1e8)
	base.Done(kb)

	div := NewRun(d)
	kd := div.Launch("divergent", 1<<16)
	kd.ComputeDP(1e8)
	kd.Divergence(0.25)
	div.Done(kd)

	ratio := div.Seconds() / base.Seconds()
	if ratio < 2 {
		t.Errorf("75%% divergence should at least double compute time, ratio=%v", ratio)
	}
}

func TestImbalanceMonotone(t *testing.T) {
	d := Fermi()
	mk := func(maxW float64) float64 {
		r := NewRun(d)
		k := r.Launch("k", 1<<16)
		k.GlobalRead(1e7)
		k.Imbalance(maxW, 1)
		r.Done(k)
		return r.Seconds()
	}
	if !(mk(1) <= mk(4) && mk(4) < mk(100)) {
		t.Errorf("imbalance penalty not monotone: %v %v %v", mk(1), mk(4), mk(100))
	}
}

func TestFinishIdempotent(t *testing.T) {
	d := Fermi()
	r := NewRun(d)
	k := r.Launch("k", 1024)
	k.GlobalRead(1e6)
	a := k.Finish()
	k.GlobalRead(1e9) // must not change anything now
	b := k.Finish()
	if a != b {
		t.Errorf("Finish not idempotent: %v vs %v", a, b)
	}
}

func TestBreakdownSumsSanely(t *testing.T) {
	d := Fermi()
	r := NewRun(d)
	k := r.Launch("k", 1<<16)
	k.GlobalRead(1e7)
	k.ComputeDP(1e6)
	k.GlobalAtomics(1000, 10)
	k.Latency(777)
	r.Done(k)
	b := r.Kernels()[0]
	if b.TotalNs < b.AtomicNs+b.ExtraNs+b.LaunchNs {
		t.Errorf("total %v smaller than non-overlapping parts %v", b.TotalNs, b.AtomicNs+b.ExtraNs+b.LaunchNs)
	}
	if b.Name != "k" || b.Threads != 1<<16 {
		t.Errorf("breakdown identity wrong: %+v", b)
	}
}

func TestRunAccumulation(t *testing.T) {
	d := Fermi()
	r := NewRun(d)
	if r.Device() != d {
		t.Fatal("Device() mismatch")
	}
	k1 := r.Launch("a", 100)
	k1.GlobalRead(1e6)
	r.Done(k1)
	t1 := r.Nanoseconds()
	r.HostSync()
	r.AddNs(500)
	if r.Nanoseconds() != t1+d.LaunchOverheadNs/2+500 {
		t.Errorf("accumulation wrong: %v", r.Nanoseconds())
	}
	if len(r.Kernels()) != 1 {
		t.Errorf("kernel count = %d", len(r.Kernels()))
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// Property: simulated time is deterministic, positive and finite for any
// charge mix.
func TestQuickKernelTimeSane(t *testing.T) {
	d := Fermi()
	f := func(threads uint16, bytesK uint32, gathers uint16, flops uint32, atomics uint16, addrs uint8) bool {
		mk := func() float64 {
			r := NewRun(d)
			k := r.Launch("q", int(threads))
			k.GlobalRead(float64(bytesK) * 1024)
			k.Gather(int(gathers), 8, float64(bytesK)*4096, 2)
			k.ComputeDP(float64(flops))
			k.GlobalAtomics(int(atomics), int(addrs))
			r.Done(k)
			return r.Seconds()
		}
		a, b := mk(), mk()
		return a == b && a > 0 && !math.IsNaN(a) && !math.IsInf(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: more coalesced traffic never makes a kernel faster.
func TestQuickMemoryMonotone(t *testing.T) {
	d := Fermi()
	f := func(bytesK uint32, extraK uint16) bool {
		mk := func(b float64) float64 {
			r := NewRun(d)
			k := r.Launch("q", 4096)
			k.GlobalRead(b)
			r.Done(k)
			return r.Seconds()
		}
		b := float64(bytesK) * 1024
		return mk(b) <= mk(b+float64(extraK)*1024)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHostCostModel(t *testing.T) {
	h := DefaultHost()
	small := h.Scan(1e3, 1, 8)
	big := h.Scan(1e8, 1, 8)
	if small >= big {
		t.Errorf("host scan cost should grow with size: %v vs %v", small, big)
	}
	if c := h.Constant(); c <= 0 || c > 1e-6 {
		t.Errorf("constant feature cost out of range: %v", c)
	}
	if h.Scan(1e6, 1, 0) <= 0 {
		t.Error("elemBytes=0 should fall back, not blow up")
	}
}

func TestStridedAccess(t *testing.T) {
	d := Fermi()
	mk := func(stride int) float64 {
		r := NewRun(d)
		k := r.Launch("s", 1<<16)
		k.StridedAccess(1<<18, 4, stride)
		r.Done(k)
		return r.Seconds()
	}
	if !(mk(4) < mk(64)) {
		t.Errorf("unit stride (%v) should beat stride 64 (%v)", mk(4), mk(64))
	}
	// Zero-length access is free.
	r := NewRun(d)
	k := r.Launch("z", 1)
	k.StridedAccess(0, 4, 4)
	r.Done(k)
	if r.Nanoseconds() != d.LaunchOverheadNs {
		t.Errorf("empty access should cost only launch overhead, got %v", r.Nanoseconds())
	}
}

func TestKeplerDevice(t *testing.T) {
	k := Kepler()
	f := Fermi()
	if k.MemBandwidthGBs <= f.MemBandwidthGBs {
		t.Error("K20c should have more bandwidth than C2050")
	}
	if k.TexCacheBytes <= f.TexCacheBytes {
		t.Error("K20c should have a larger texture path")
	}
	// A bandwidth-bound kernel must run faster on the higher-bandwidth part.
	run := func(d *Device) float64 {
		r := NewRun(d)
		kk := r.Launch("stream", d.MaxResidentThreads())
		kk.GlobalRead(64 << 20)
		r.Done(kk)
		return r.Seconds()
	}
	if run(Kepler()) >= run(Fermi()) {
		t.Error("streaming kernel should be faster on Kepler")
	}
}

func TestNewDeviceCopy(t *testing.T) {
	d := NewDevice("custom")
	if d.Name != "custom" || d.SMCount != Fermi().SMCount {
		t.Errorf("NewDevice wrong: %+v", d)
	}
	d.SMCount = 99
	if Fermi().SMCount == 99 {
		t.Error("NewDevice must not alias the Fermi template")
	}
}

func TestRunReport(t *testing.T) {
	d := Fermi()
	r := NewRun(d)
	for i := 0; i < 3; i++ {
		k := r.Launch("kern", 1024*(i+1))
		k.GlobalRead(float64(1e6 * (i + 1)))
		r.Done(k)
	}
	rep := r.Report(2)
	if !strings.Contains(rep, "kern") || !strings.Contains(rep, "total") {
		t.Errorf("report missing content:\n%s", rep)
	}
	if strings.Count(rep, "kern ") != 2 {
		t.Errorf("report cap ignored:\n%s", rep)
	}
	if full := r.Report(0); strings.Count(full, "kern ") != 3 {
		t.Errorf("uncapped report wrong:\n%s", full)
	}
}
