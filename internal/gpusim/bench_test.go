package gpusim

import "testing"

// BenchmarkKernelAccounting measures the overhead of the cost accumulator
// itself (it must stay negligible next to the real computation variants do).
func BenchmarkKernelAccounting(b *testing.B) {
	d := Fermi()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRun(d)
		k := r.Launch("bench", 1<<16)
		k.GlobalRead(1e6)
		k.Gather(1000, 8, 1e6, 4)
		k.TextureGather(1000, 8, 1e6, 4)
		k.ComputeDP(1e6)
		k.SkewedGlobalAtomics(1000, 64, 0.2)
		k.Imbalance(10, 2)
		k.Throughput(0.5)
		r.Done(k)
		_ = r.Seconds()
	}
}

func BenchmarkManySmallKernels(b *testing.B) {
	d := Fermi()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRun(d)
		for j := 0; j < 100; j++ {
			k := r.Launch("lvl", 1024)
			k.GlobalRead(4096)
			r.Done(k)
		}
		_ = r.Seconds()
	}
}
