# Nitro reproduction — build/test/bench entry points.
#
# `make ci` is what .github/workflows/ci.yml runs: vet, build, and the full
# test suite under the race detector (the parallel tuning pipeline is
# required to be race-clean and bit-identical at every -parallelism setting).

GO ?= go

.PHONY: all build vet test race bench bench-parallel ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep (figures + ablations + ML kernels).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Just the parallel-pipeline benchmarks: grid search (uncached vs cached vs
# parallel) and corpus labelling (serial vs worker pool).
bench-parallel:
	$(GO) test -run xxx -bench 'GridSearch|Fig4Setup' ./internal/ml/ .

ci: vet build race

clean:
	$(GO) clean ./...
