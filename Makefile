# Nitro reproduction — build/test/bench entry points.
#
# `make ci` is what .github/workflows/ci.yml runs: vet, build, and the full
# test suite under the race detector (the parallel tuning pipeline is
# required to be race-clean and bit-identical at every -parallelism setting).

GO ?= go

.PHONY: all build vet test race stress fuzz-smoke bench bench-parallel bench-call bench-trace bench-dispatch dispatch-agreement online-replay metrics-smoke server-smoke chaos-smoke trace-smoke bench-serving bench-ensemble bench-obs bakeoff-smoke lint ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection stress: the robustness suites (panic isolation, deadlines,
# quarantine breaker, seeded fault harness) under the race detector, with a
# hard wall-clock bound so a hung fallback path fails fast instead of
# wedging CI.
stress:
	$(GO) test -race -timeout 120s -run 'Fault|Quarantine|Panic|Timeout|Cancel|Veto' ./internal/core/ ./internal/autotuner/ ./cmd/nitro-tune/

# Native-fuzzer smoke: a short bounded run of the model-deserializer fuzz
# target (arbitrary bytes must never panic and must round-trip to a fixed
# point). The accumulated corpus keeps regressions reproducible.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzUnmarshalModel -fuzztime 10s ./internal/ml/

# Full benchmark sweep (figures + ablations + ML kernels + the
# deployment-runtime parallel-call benches in internal/core).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Just the parallel-pipeline benchmarks: grid search (uncached vs cached vs
# parallel) and corpus labelling (serial vs worker pool).
bench-parallel:
	$(GO) test -run xxx -bench 'GridSearch|Fig4Setup' ./internal/ml/ .

# Deployment-runtime benchmarks: the lock-free selection hot path under
# b.RunParallel (Call / CallFixed futures / batched CallConcurrent), at one
# and several scheduler threads, plus the adaptation-overhead benches
# (BenchmarkCallAdaptive{Off,On,OnExploring}) that bound what an attached
# online engine costs per call. Run on a multi-core host for scaling
# numbers; at 1 core this checks that the concurrency machinery adds no
# serial overhead.
bench-call:
	$(GO) test -run xxx -bench 'BenchmarkCall' -cpu 1,2,4 ./internal/core/

# Online-adaptation smoke: replay a seeded drifting input stream through
# cmd/nitro-tune's adaptation engine twice and assert the printed timeline
# (drift detected -> retrain -> hot-swap -> recovered) is reproducible byte
# for byte, then check the expected events actually appear. This is the
# closed loop end to end: offline tune, synthetic mid-stream drift, online
# retrain, model v2 swap.
online-replay:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	printf '%s\n' '{"function":"sort","benchmark":"Sort","classifier":"svm","scale":0.1,"seed":3,"train_count":12,"test_count":12,"online_replay":600}' > "$$tmp/online.json" && \
	$(GO) run ./cmd/nitro-tune -spec "$$tmp/online.json" > "$$tmp/run1.txt" && \
	$(GO) run ./cmd/nitro-tune -spec "$$tmp/online.json" > "$$tmp/run2.txt" && \
	if ! cmp -s "$$tmp/run1.txt" "$$tmp/run2.txt"; then \
		echo "FAIL: online replay timeline is not reproducible:"; \
		diff "$$tmp/run1.txt" "$$tmp/run2.txt"; exit 1; \
	fi && \
	for ev in '] drift:' '] retrain (' '] swap (v1 -> v2' '] recovered:'; do \
		grep -F "$$ev" "$$tmp/run1.txt" >/dev/null || { \
			echo "FAIL: timeline missing \"$$ev\" event:"; cat "$$tmp/run1.txt"; exit 1; }; \
	done && \
	echo "online replay reproducible: $$(grep -c '\[call ' "$$tmp/run1.txt") timeline events, drift -> retrain -> swap -> recovered"

# Dispatch-overhead study: distill all five benchmark models, time the
# three dispatch tiers (memoized / compiled / exact) through a live replay
# CodeVariant, and emit the machine-readable BENCH_dispatch.json artifact
# alongside the per-tier Go benchmarks. Run on a quiet machine for stable
# ns/op numbers.
bench-dispatch:
	$(GO) run ./cmd/nitro-experiments -run dispatch -scale 0.2 -train 24 -test 36 -nogrid -dispatch-json BENCH_dispatch.json
	$(GO) test -run xxx -bench 'BenchmarkCallMemoHit|BenchmarkCallCompiled|BenchmarkCallExact|BenchmarkCallNoModel' -benchmem ./internal/core/

# CI agreement gate: every benchmark's tuned model must distill into a
# compiled artifact that agrees with the exact classifier on >= 99% of the
# training corpus (and the serve-time tiers must pick identical variants —
# the equivalence tests in internal/core and internal/ml).
dispatch-agreement:
	$(GO) test -run 'TestCompiledAgreementCorpora' -v ./internal/experiments/
	$(GO) test -run 'TestServedChoiceMatchesExactOnCorpus|TestCompiledTierServesIdenticalChoices|TestCallConcurrentBatchedMatchesSerialTiers' ./internal/ml/ ./internal/core/

# Observability benchmarks: the dispatch hot path with tracing disabled /
# sampled / always-on and with latency histograms enabled, against the
# untraced BenchmarkCallParallel baseline. "Tracing off" must sit within
# noise of the baseline (ISSUE-5 acceptance criterion).
bench-trace:
	$(GO) test -run xxx -bench 'BenchmarkCallParallel$$|BenchmarkCallTraced|BenchmarkCallHistograms' -cpu 1,2,4 ./internal/core/

# Telemetry-endpoint smoke: run a tuned throughput replay with tracing,
# phase timings and a live metrics endpoint on an ephemeral port, then
# assert (a) the endpoint came up, (b) the shutdown self-scrape validated
# the Prometheus exposition (format + nitro_ name lint — the CLI exits
# non-zero if validation fails), (c) decision traces were recorded, and
# (d) the phase report names the pipeline stages. The live-HTTP scrape
# itself is covered by Go tests (TestServeScrape and friends), which run
# second for an end-to-end check over a real listener.
metrics-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	printf '%s\n' '{"function":"sort","benchmark":"Sort","classifier":"svm","scale":0.1,"seed":3,"train_count":12,"test_count":12,"throughput":200,"trace":"sampled","phase_timings":true,"metrics_addr":"127.0.0.1:0"}' > "$$tmp/metrics.json" && \
	$(GO) run ./cmd/nitro-tune -spec "$$tmp/metrics.json" > "$$tmp/run.txt" && \
	for want in 'metrics endpoint: http://127.0.0.1:' 'metrics exposition valid: ' 'decision traces recorded: ' 'phase timings: '; do \
		grep -F "$$want" "$$tmp/run.txt" >/dev/null || { \
			echo "FAIL: metrics smoke output missing \"$$want\":"; cat "$$tmp/run.txt"; exit 1; }; \
	done && \
	echo "metrics smoke ok: $$(grep -F 'metrics exposition valid: ' "$$tmp/run.txt")" && \
	$(GO) test -run 'TestServeScrape|TestPublicAPIMetricsEndpoint|TestRunSpecMetricsEndpointLiveScrape' ./internal/obs/ ./cmd/nitro-tune/ .

# Registry-daemon smoke: nitro-server's built-in self-test drives an
# ephemeral daemon end to end over real HTTP — register a function, push
# an observation corpus, queue a tuning job, pull the versioned artifact
# (verifying the content-addressed ETag and the 304 revalidation path),
# validate the /metrics exposition, and shut down gracefully; the binary
# exits non-zero on any failure. The Go tests then cover the full API
# surface (auth/tenant isolation, preconditions, quotas, -race publish
# stress) and the two-client canary-rollout e2e.
server-smoke:
	$(GO) run ./cmd/nitro-server -smoke
	$(GO) test -race ./internal/server/...

# Crash-and-chaos smoke: nitro-server's seeded kill-restart-resume
# lifecycle — stage a canary, crash with no drain, restart over the same
# data dir, assert the journal resumed the canary at its recorded counts,
# then promote it through a fault-injecting transport (drops, 5xx bursts,
# mid-body resets) with zero dropped client calls. The binary runs the
# whole lifecycle TWICE and diffs the transcripts byte for byte, so any
# nondeterminism in the recovery path fails the target. The Go test then
# re-runs the richer kill-restart e2e (partition/heal, breaker reopen)
# under -race.
chaos-smoke:
	$(GO) run ./cmd/nitro-server -smoke-chaos
	$(GO) test -race -run 'TestChaosKillRestartResumePromote|TestJournal' ./internal/server/...

# Correlated-tracing smoke: nitro-server's trace self-test drives an
# ephemeral daemon through a full canary lifecycle under ONE injected
# X-Nitro-Trace-Id and asserts the id is recoverable from every
# observability surface — the structured slog stream (register -> push ->
# canary start -> report -> promote, each stamped with the id), the
# journal WAL bytes on disk, the /debug/flight ring (scraped twice and
# byte-compared: wall-clock-free and side-effect-free), and the settled
# deployment's last_decision_trace. The Go tests then re-run the richer
# crash-correlation e2e (kill mid-canary, restart, the resumed episode and
# its verdict still carry the id) and the double-run determinism suite
# under -race.
trace-smoke:
	$(GO) run ./cmd/nitro-server -smoke-trace
	$(GO) test -race -run 'TestTraceSurvivesKillRestart|TestObservabilityDoubleRunDeterminism|TestTraceHeaderEchoAndSanitize|TestFlightEndpoint|TestPullVersionHeaderOn200And304' ./internal/server/...

# Serving-latency bench: drive a live daemon over HTTP and record
# pull/push/observation latency percentiles plus shed behaviour under
# overload into BENCH_serving.json.
bench-serving:
	$(GO) run ./cmd/nitro-experiments -run serving -serving-json BENCH_serving.json

# Ensemble study: single-SVM vs four-member-committee selection quality,
# training cost and per-prediction overhead across the benchmark corpora,
# plus the epsilon-greedy vs LinUCB drift-response comparison, into
# BENCH_ensemble.json. Run on a quiet machine for stable ns/op numbers.
bench-ensemble:
	$(GO) run ./cmd/nitro-experiments -run ensemble -scale 0.2 -train 24 -test 36 -nogrid -ensemble-json BENCH_ensemble.json

# Observability-overhead bench: run the per-route latency harness against
# a daemon with the tracing plane at its defaults and again with the full
# plane on (debug slog + client-injected trace ids on every request), and
# record the p50-based overhead per route into BENCH_obs.json. The
# acceptance bar is <2% on the artifact pull path; run on a quiet machine —
# the off/on arms are interleaved and best-of-N to shave scheduler noise.
bench-obs:
	$(GO) run ./cmd/nitro-experiments -run obs -obs-json BENCH_obs.json

# Sequential-bakeoff smoke: replay the drifting stream through the online
# engine with the ensemble classifier, LinUCB bandit routing and bakeoff
# promotion all enabled, TWICE, and diff the transcripts byte for byte —
# any nondeterminism in the committee vote, the bandit's arm selection or
# the paired-t stopper fails the target. Then assert the bakeoff actually
# ran: the timeline must show drift -> retrain -> bakeoff-start ->
# bakeoff-promote (v2 in) rather than the legacy validate-then-swap path.
bakeoff-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	printf '%s\n' '{"function":"sort","benchmark":"Sort","classifier":"ensemble","scale":0.1,"seed":3,"train_count":12,"test_count":12,"online_replay":600,"bandit":true,"bandit_min_confidence":1.1,"bakeoff":true}' > "$$tmp/bakeoff.json" && \
	$(GO) run ./cmd/nitro-tune -spec "$$tmp/bakeoff.json" > "$$tmp/run1.txt" && \
	$(GO) run ./cmd/nitro-tune -spec "$$tmp/bakeoff.json" > "$$tmp/run2.txt" && \
	if ! cmp -s "$$tmp/run1.txt" "$$tmp/run2.txt"; then \
		echo "FAIL: bakeoff replay timeline is not reproducible:"; \
		diff "$$tmp/run1.txt" "$$tmp/run2.txt"; exit 1; \
	fi && \
	for ev in '] drift:' '] retrain (' '] bakeoff-start (' '] bakeoff-promote (v1 -> v2'; do \
		grep -F "$$ev" "$$tmp/run1.txt" >/dev/null || { \
			echo "FAIL: timeline missing \"$$ev\" event:"; cat "$$tmp/run1.txt"; exit 1; }; \
	done && \
	if grep -F '] swap (' "$$tmp/run1.txt" >/dev/null; then \
		echo "FAIL: legacy swap event fired despite bakeoff promotion:"; cat "$$tmp/run1.txt"; exit 1; \
	fi && \
	echo "bakeoff replay reproducible: drift -> retrain -> bakeoff-start -> bakeoff-promote"

# Static analysis beyond vet. Uses staticcheck when it is installed
# (CI installs it); locally it is skipped with a note rather than failing
# the build, because the toolchain image is offline.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

ci: lint build race

clean:
	$(GO) clean ./...
